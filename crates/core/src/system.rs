//! The integrated cycle-accurate simulation loop.
//!
//! A [`System`] is a thin driver over three explicit layers: the
//! protocol engine ([`protocol`](crate::protocol) — every L2 transition
//! plus the scheme's [`ProtocolPolicy`](crate::policy::ProtocolPolicy)
//! bound at build time), the typed transaction table
//! ([`txn`](crate::txn)), and the simulation fabric
//! ([`fabric`](crate::fabric) — the 3D NoC, the timed-event heap, and
//! the contention models of [`timing`](crate::timing)). The driver owns
//! the clock: it advances everything in lock-step one cycle at a time,
//! feeds due events and delivered packets to the engine, ticks the
//! cores, and fast-forwards through quiet stretches without losing
//! cycle accuracy. Assembly lives in [`SystemBuilder`].
//!
//! [`SystemBuilder`]: crate::SystemBuilder

use std::cmp::Reverse;

use nim_cpu::{CoreAction, InOrderCore};
use nim_noc::Network;
use nim_obs::Obs;
use nim_topology::{ChipLayout, CpuSeat};
use nim_types::{ClusterId, CpuId, Cycle, SystemConfig};
use nim_workload::{BenchmarkProfile, TraceGenerator, TraceSource};

use crate::error::RunError;
use crate::fabric::SimFabric;
use crate::protocol::Engine;
use crate::report::{Counters, RunReport};
use crate::scheme::Scheme;

/// Cycles without a completed transaction before declaring a stall.
const WATCHDOG_CYCLES: u64 = 2_000_000;

/// Reused buffers for the per-epoch observability snapshot: the column
/// names are formatted once per run and the value/occupancy vectors are
/// recycled, so steady-state sampling allocates nothing per epoch.
#[derive(Clone, Debug, Default)]
pub(crate) struct SampleBuf {
    /// Column names, laid out as: one per pillar, one per cluster, then
    /// the fixed counter names. Empty until the first sample.
    names: Vec<String>,
    /// Values aligned with `names`, rewritten every epoch.
    values: Vec<f64>,
    /// Scratch for [`Network::bus_occupancies_into`].
    occ: Vec<usize>,
}

/// The fixed (non-indexed) columns of the epoch sample, appended after
/// the per-pillar and per-cluster occupancy columns.
const SAMPLE_COUNTERS: [&str; 10] = [
    "l2/hits",
    "l2/misses",
    "migrations",
    "net/packets_delivered",
    "net/flit_hops",
    "phase/noc_hop",
    "phase/pillar_wait",
    "phase/resource_queue",
    "phase/l2_service",
    "phase/mem_wait",
];

/// Builder knobs a running [`System`] cannot reconstruct from its built
/// state — carried so a snapshot records the exact build recipe and
/// [`SystemBuilder::resume`](crate::SystemBuilder::resume) can rebuild
/// an identical system before restoring live state into it.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RebuildKnobs {
    pub(crate) vicinity_stop: bool,
    pub(crate) replication: bool,
    pub(crate) edge_memory: bool,
    pub(crate) fabric: crate::fabric::FabricKind,
}

/// The loop-carried bookkeeping of a run in flight, hoisted out of
/// `run_with_source`'s locals so a run can pause at an epoch boundary,
/// be serialized, and continue in another process exactly where it
/// left off.
#[derive(Clone, Debug)]
pub(crate) struct RunProgress {
    /// Benchmark name the eventual [`RunReport`] carries.
    pub(crate) benchmark: String,
    /// Whether the warm-up target has been passed.
    pub(crate) warmed: bool,
    /// Counter/cycle/instruction baselines at the start of the
    /// measurement window (`None` until warmed).
    pub(crate) window_start: Option<(Counters, u64, u64)>,
    /// Cycle of the last completed transaction (watchdog anchor).
    pub(crate) last_progress: u64,
    /// Transaction count at `last_progress`.
    pub(crate) last_count: u64,
}

/// The assembled chip multiprocessor.
#[derive(Debug)]
pub struct System {
    pub(crate) scheme: Scheme,
    pub(crate) cfg: SystemConfig,
    /// The protocol engine: chip state + every L2 transition.
    pub(crate) engine: Engine,
    /// The simulation substrate: NoC, event heap, contention models.
    pub(crate) fabric: SimFabric,
    /// Reused epoch-sampling buffers (names formatted once per run).
    pub(crate) sample_buf: SampleBuf,
    pub(crate) seed: u64,
    pub(crate) warmup: u64,
    pub(crate) sample: u64,
    pub(crate) prewarm: bool,
    /// Dead-cycle elision enabled (see [`SystemBuilder::horizon_skipping`]).
    ///
    /// [`SystemBuilder::horizon_skipping`]: crate::SystemBuilder::horizon_skipping
    pub(crate) skip: bool,
    /// The network was cut into more than one shard (see
    /// [`SystemBuilder::shards`](crate::SystemBuilder::shards)); enables
    /// the multi-threaded window path in the run loop.
    pub(crate) sharded: bool,
    pub(crate) obs: Obs,
    /// Build-recipe knobs recorded for snapshots (see [`RebuildKnobs`]).
    pub(crate) knobs: RebuildKnobs,
    /// The paused/running state of an in-flight run (`None` between
    /// runs). [`System::snapshot`](crate::System::snapshot) requires it.
    pub(crate) progress: Option<RunProgress>,
}

impl System {
    /// The scheme being simulated.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The effective configuration (2D schemes are flattened).
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The chip geometry.
    pub fn layout(&self) -> &ChipLayout {
        &self.engine.layout
    }

    /// Where the CPUs ended up.
    pub fn seats(&self) -> &[CpuSeat] {
        &self.engine.seats
    }

    /// Accesses each bank performed so far, indexed like
    /// [`ChipLayout::node_index`] — the activity profile that drives
    /// per-bank power for thermal analysis (the paper's closing
    /// discussion points at exactly this coupling).
    pub fn bank_access_counts(&self) -> &[u64] {
        self.fabric.bank_access_counts()
    }

    /// The on-chip network, for utilisation and congestion analysis.
    pub fn network(&self) -> &Network {
        &self.fabric.net
    }

    /// The observability handle attached at build time (disabled by
    /// default) — export its trace or metrics after a run.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Runs the benchmark until the sampling target is reached and
    /// returns the measurements.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Stalled`] if the system makes no forward
    /// progress (a protocol bug — should never happen).
    pub fn run(&mut self, profile: &BenchmarkProfile) -> Result<RunReport, RunError> {
        let mut gen = self.begin(profile);
        match self.advance(&mut gen, None) {
            Ok(_) => Ok(self.finish_report()),
            Err(e) => {
                self.progress = None;
                Err(e)
            }
        }
    }

    /// Starts a run of `profile` without driving it: pre-warms the L2
    /// (if configured), arms the run bookkeeping, and returns the
    /// deterministic reference generator. Drive the run with
    /// [`System::run_until`] — the split exists so a caller can pause
    /// at an epoch boundary and [`System::snapshot`](crate::System)
    /// the whole simulator mid-flight.
    pub fn begin(&mut self, profile: &BenchmarkProfile) -> TraceGenerator {
        if self.prewarm && self.engine.l2.occupancy() == 0 {
            self.engine.prewarm(profile);
        }
        self.begin_run(profile.name);
        TraceGenerator::new(profile, self.cfg.num_cpus, self.seed)
    }

    /// Drives a begun run until at least `stop_after` transactions have
    /// completed *and* the clock sits on a legal snapshot point (an
    /// epoch boundary when sampling is on), or to completion, whichever
    /// comes first. Returns `Some(report)` when the run finished, and
    /// `None` when it paused — the system is then snapshot-legal.
    ///
    /// While a pause is pending the loop suppresses horizon skipping
    /// and shard windows and ticks cycle by cycle (bit-identical by the
    /// skip-equivalence invariant), so the boundary cycle is reached
    /// and sampled exactly as the uninterrupted loop would.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Stalled`] exactly like [`System::run`].
    ///
    /// # Panics
    ///
    /// Panics if no run is in progress (call [`System::begin`] first,
    /// or resume from a snapshot).
    pub fn run_until(
        &mut self,
        source: &mut dyn TraceSource,
        stop_after: u64,
    ) -> Result<Option<RunReport>, RunError> {
        match self.advance(source, Some(stop_after)) {
            Ok(true) => Ok(Some(self.finish_report())),
            Ok(false) => Ok(None),
            Err(e) => {
                self.progress = None;
                Err(e)
            }
        }
    }

    /// Arms the run bookkeeping for a fresh run.
    pub(crate) fn begin_run(&mut self, benchmark: &str) {
        let warmed = self.warmup == 0;
        let window_start = if warmed {
            Some((
                self.engine.counters,
                self.fabric.net.now().0,
                self.total_instructions(),
            ))
        } else {
            None
        };
        self.progress = Some(RunProgress {
            benchmark: benchmark.to_string(),
            warmed,
            window_start,
            last_progress: self.fabric.net.now().0,
            last_count: self.engine.counters.l2_transactions,
        });
    }

    /// Builds the report for a completed run and clears the run state.
    pub(crate) fn finish_report(&mut self) -> RunReport {
        let p = self.progress.take().expect("run in progress");
        let (start_counters, start_cycle, start_instr) =
            p.window_start.expect("sampling window started");
        let mut bus = Vec::new();
        self.fabric.net.bus_stats_into(&mut bus);
        self.publish_obs_metrics(&bus);
        RunReport {
            scheme: self.scheme,
            benchmark: p.benchmark,
            cycles: self.fabric.net.now().0 - start_cycle,
            instructions: self.total_instructions() - start_instr,
            num_cpus: self.cfg.num_cpus,
            counters: self.engine.counters.minus(&start_counters),
            network: self.fabric.net.stats().clone(),
            bus_transfers: bus.iter().map(|b| b.transfers).sum(),
            bus_contention_cycles: bus.iter().map(|b| b.contention_cycles).sum(),
        }
    }

    /// Runs the simulation from an arbitrary reference source — a
    /// [`TraceGenerator`], a recorded
    /// [`ReplayTrace`](nim_workload::ReplayTrace), or a test stub. The
    /// caller is responsible for any pre-warming when replaying (use
    /// [`SystemBuilder::prewarm`](crate::SystemBuilder::prewarm) + [`System::run`] for the synthetic
    /// path).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Stalled`] if no transaction completes for an
    /// implausibly long time — including the case where the source runs
    /// dry before the sampling target is reached.
    pub fn run_with_source(
        &mut self,
        benchmark: &str,
        source: &mut dyn TraceSource,
    ) -> Result<RunReport, RunError> {
        self.begin_run(benchmark);
        match self.advance(source, None) {
            Ok(_) => Ok(self.finish_report()),
            Err(e) => {
                self.progress = None;
                Err(e)
            }
        }
    }

    /// The driver loop. Advances the simulation until the sampling
    /// target is reached (returns `Ok(true)`), or — with `stop_after`
    /// set — until at least that many transactions have completed *and*
    /// the clock sits on a snapshot-legal cycle (returns `Ok(false)`).
    /// The loop-carried bookkeeping lives in [`RunProgress`], so a
    /// paused run serializes and continues bit-identically.
    pub(crate) fn advance(
        &mut self,
        source: &mut dyn TraceSource,
        stop_after: Option<u64>,
    ) -> Result<bool, RunError> {
        let target = self.warmup + self.sample;
        let (mut warmed, mut window_start, mut last_progress, mut last_count) = {
            let p = self.progress.as_ref().expect("run in progress");
            (p.warmed, p.window_start, p.last_progress, p.last_count)
        };
        // Double-buffered delivery hand-off: the network drains into
        // `incoming`, which is then swapped with `serving` before the
        // engine consumes it. The network never appends to the list the
        // engine is iterating, so the engine's drain could overlap the
        // next network phase without reordering deliveries — they stay
        // in deterministic (cycle, shard-order) sequence either way.
        let mut incoming = Vec::new();
        let mut serving: Vec<nim_noc::Delivered> = Vec::new();
        // Set once `stop_after` is reached: skipping is suppressed (per-
        // cycle ticking is bit-identical by the skip-equivalence
        // invariant) so the next epoch boundary is ticked and sampled
        // exactly, making it a legal snapshot point.
        let mut stopping = false;
        let result = loop {
            if self.engine.counters.l2_transactions >= target {
                break Ok(true);
            }
            if let Some(stop) = stop_after {
                if self.engine.counters.l2_transactions >= stop {
                    stopping = true;
                    if self.obs.sample_every() == 0
                        || self.obs.last_sample_cycle() == Some(self.fabric.net.now().0)
                    {
                        break Ok(false);
                    }
                }
            }
            // A dried-up trace (every core halted) with nothing in flight
            // can never make progress; report it without spinning the
            // watchdog out.
            if self.fabric.net.is_idle()
                && self.fabric.events.is_empty()
                && !self.fabric.has_modeled()
                && self.engine.txns.is_empty()
                && self.engine.cores.iter().all(InOrderCore::is_halted)
            {
                break Err(RunError::Stalled {
                    cycle: self.fabric.net.now().0,
                    completed: self.engine.counters.l2_transactions,
                });
            }
            if self.fabric.net.now().0 - last_progress > WATCHDOG_CYCLES {
                break Err(RunError::Stalled {
                    cycle: self.fabric.net.now().0,
                    completed: self.engine.counters.l2_transactions,
                });
            }
            if !stopping {
                self.try_fast_forward();
                if self.sharded {
                    self.try_shard_window();
                }
            }
            self.fabric.net.tick();
            let now = self.fabric.net.now();
            if self.obs.sample_due(now.0) {
                self.record_obs_sample(now.0);
            }
            // Timed events due this cycle.
            while let Some(&Reverse((due, _, _))) = self.fabric.events.peek() {
                if due > now.0 {
                    break;
                }
                let Reverse((_, _, ev)) = self.fabric.events.pop().expect("peeked");
                self.engine.handle_event(&mut self.fabric, ev, now);
            }
            // Network deliveries (flit-level fabric) and modeled
            // deliveries (latency-table / ideal fabrics) — at most one
            // stream is ever populated for a given run.
            if self.fabric.net.has_deliveries() {
                self.fabric.net.drain_delivered_into(&mut incoming);
                std::mem::swap(&mut incoming, &mut serving);
                for d in serving.drain(..) {
                    self.engine.handle_delivered(&mut self.fabric, d, now);
                }
            }
            while let Some(d) = self.fabric.pop_modeled(now.0) {
                self.engine.handle_delivered(&mut self.fabric, d, now);
            }
            // Cores. Halted cores are skipped outright: `tick` on a
            // halted core is a no-op (it returns before touching stats),
            // so eliding the call is bit-identical and keeps drained
            // cores from costing a call per cycle for the rest of a run.
            for i in 0..self.engine.cores.len() {
                if self.engine.cores[i].is_halted() {
                    continue;
                }
                let cpu = CpuId::from_index(i);
                let action = self.engine.cores[i].tick(&mut || source.next_for(cpu));
                if let CoreAction::Request(req) = action {
                    self.engine.handle_request(&mut self.fabric, req, now);
                }
            }
            if self.engine.counters.l2_transactions != last_count {
                last_count = self.engine.counters.l2_transactions;
                last_progress = now.0;
            }
            if !warmed && self.engine.counters.l2_transactions >= self.warmup {
                warmed = true;
                window_start = Some((self.engine.counters, now.0, self.total_instructions()));
            }
        };
        if let Some(p) = self.progress.as_mut() {
            p.warmed = warmed;
            p.window_start = window_start;
            p.last_progress = last_progress;
            p.last_count = last_count;
        }
        result
    }

    fn total_instructions(&self) -> u64 {
        self.engine
            .cores
            .iter()
            .map(|c| c.stats().instructions)
            .sum()
    }

    /// Snapshots the live state the epoch sampler tracks: per-pillar bus
    /// occupancy, per-cluster L2 occupancy, and the headline cumulative
    /// counters. Called only when [`Obs::sample_due`] fires. The column
    /// names are formatted once on the first epoch; afterwards every
    /// snapshot reuses [`SampleBuf`]'s vectors and allocates nothing.
    fn record_obs_sample(&mut self, now: u64) {
        self.fabric
            .net
            .bus_occupancies_into(&mut self.sample_buf.occ);
        let SampleBuf { names, values, occ } = &mut self.sample_buf;
        if names.is_empty() {
            for i in 0..occ.len() {
                names.push(format!("pillar/{i}/occupancy"));
            }
            for cl in 0..self.engine.layout.num_clusters() {
                names.push(format!("cluster/{cl}/occupancy"));
            }
            names.extend(SAMPLE_COUNTERS.iter().map(|n| (*n).to_string()));
        }
        values.clear();
        values.extend(occ.iter().map(|&o| o as f64));
        for cl in 0..self.engine.layout.num_clusters() {
            values.push(self.engine.l2.cluster_occupancy(ClusterId(cl)) as f64);
        }
        let net = self.fabric.net.stats();
        values.push(self.engine.counters.l2_hits as f64);
        values.push(self.engine.counters.l2_misses as f64);
        values.push(self.engine.counters.migrations as f64);
        values.push(net.packets_delivered as f64);
        values.push(net.flit_hops as f64);
        // Cumulative phase buckets. These move only when a transaction
        // completes — a delivery or timed event, never a dead cycle —
        // so the columns stay bit-identical under horizon skipping.
        values.extend(self.engine.counters.phase_cycles().map(|c| c as f64));
        self.obs
            .record_sample_cols(now, &self.sample_buf.names, &self.sample_buf.values);
    }

    /// Publishes end-of-run totals into the metrics registry: the
    /// per-router traversal map (the link-utilization heatmap source),
    /// per-pillar bus statistics (passed in by the caller, which already
    /// collected them for the [`RunReport`]), L2 and transaction
    /// counters, and the packet latency distribution. Formatted metric
    /// names share one reused `String` buffer.
    fn publish_obs_metrics(&self, bus: &[nim_noc::BusStats]) {
        if !self.obs.is_enabled() {
            return;
        }
        use std::fmt::Write as _;
        let mut name = String::new();
        for (i, &n) in self.fabric.net.traversals().iter().enumerate() {
            let c = self.engine.layout.coord_of_index(i);
            name.clear();
            let _ = write!(name, "noc/traversals/{}/{}/{}", c.x, c.y, c.layer);
            self.obs.counter_set(&name, n);
        }
        for (i, b) in bus.iter().enumerate() {
            name.clear();
            let _ = write!(name, "pillar/{i}/transfers");
            self.obs.counter_set(&name, b.transfers);
            name.clear();
            let _ = write!(name, "pillar/{i}/busy_cycles");
            self.obs.counter_set(&name, b.busy_cycles);
            name.clear();
            let _ = write!(name, "pillar/{i}/contention_cycles");
            self.obs.counter_set(&name, b.contention_cycles);
            name.clear();
            let _ = write!(name, "pillar/{i}/peak_queued");
            self.obs.counter_set(&name, b.peak_queued);
        }
        let net = self.fabric.net.stats();
        self.obs.counter_set("net/packets_sent", net.packets_sent);
        self.obs
            .counter_set("net/packets_delivered", net.packets_delivered);
        self.obs.counter_set("net/flit_hops", net.flit_hops);
        self.obs
            .counter_set("net/switch_contention", net.switch_contention);
        self.obs.counter_set("net/bus_transfers", net.bus_transfers);
        self.obs
            .histogram_set("net/latency_cycles", net.latency_histogram.clone());
        // Window-executor diagnostics. These vary with shard count and
        // thread availability, so they live only here — never in the
        // [`RunReport`], whose contents are compared bit-for-bit across
        // shard counts.
        let ws = self.fabric.net.window_stats();
        self.obs.counter_set("net/window/windows", ws.windows);
        self.obs.counter_set("net/window/cycles", ws.cycles);
        self.obs.counter_set("net/window/spawned", ws.spawned);
        self.obs.counter_set("net/window/inline", ws.inline);
        self.obs
            .counter_set("net/window/spawn_min", self.fabric.net.window_spawn_min());
        let l2 = self.engine.l2.stats();
        self.obs.counter_set("l2/insertions", l2.insertions);
        self.obs.counter_set("l2/evictions", l2.evictions);
        self.obs.counter_set("l2/migrations", l2.migrations);
        self.obs
            .counter_set("l2/migrations_aborted", l2.migrations_aborted);
        self.obs
            .counter_set("l2/replicas_created", l2.replicas_created);
        self.obs
            .counter_set("l2/replicas_dropped", l2.replicas_dropped);
        let c = &self.engine.counters;
        self.obs
            .counter_set("sys/l2_transactions", c.l2_transactions);
        self.obs.counter_set("sys/l2_hits", c.l2_hits);
        self.obs.counter_set("sys/l2_misses", c.l2_misses);
        self.obs.counter_set("sys/tag_accesses", c.tag_accesses);
        self.obs.counter_set("sys/bank_accesses", c.bank_accesses);
        self.obs.counter_set("sys/invalidations", c.invalidations);
        self.obs.counter_set("sys/search_retries", c.search_retries);
        self.obs.counter_set("sys/migrations", c.migrations);
        for (phase, cycles) in crate::txn::Phase::ALL.iter().zip(c.phase_cycles()) {
            name.clear();
            let _ = write!(name, "phase/{}", phase.name());
            self.obs.counter_set(&name, cycles);
        }
        self.obs
            .gauge_set("sim/cycles_per_sec", self.obs.cycles_per_sec());
    }

    /// Batch-advances the clock through a span it can prove is dead:
    /// every core is mid-gap, halted, or waiting on memory
    /// ([`InOrderCore::next_wakeup`]), no timed event comes due, and the
    /// network's own horizon ([`Network::next_event_at`]) says no phase
    /// would fire — even with traffic still buffered in flight. The skip
    /// lands one cycle *before* the earliest of the three horizons, so
    /// the very next `tick` replays exactly the cycle the naive loop
    /// would have reached. Core wakeups are checked first because they
    /// are the cheapest bound and, under steady load, the one that is
    /// almost always zero.
    fn try_fast_forward(&mut self) {
        if !self.skip || self.fabric.net.has_deliveries() {
            return;
        }
        let core_bound = self
            .engine
            .cores
            .iter()
            .map(|c| match c.next_wakeup() {
                u64::MAX => u64::MAX,
                wake => wake - 1,
            })
            .min()
            .unwrap_or(0);
        if core_bound == 0 {
            return;
        }
        let now = self.fabric.net.now().0;
        let event_bound = match self.fabric.events.peek() {
            Some(&Reverse((due, _, _))) => due.saturating_sub(now + 1),
            None => u64::MAX,
        };
        if event_bound == 0 {
            return;
        }
        let net_bound = match self.fabric.net.next_event_at() {
            Some(t) => t.0 - (now + 1),
            None => u64::MAX,
        };
        let modeled_bound = match self.fabric.next_modeled_at() {
            Some(due) => due.saturating_sub(now + 1),
            None => u64::MAX,
        };
        let delta = core_bound
            .min(event_bound)
            .min(net_bound)
            .min(modeled_bound);
        if delta == 0 || delta == u64::MAX {
            // Either something needs attention next cycle, or everything
            // is blocked with no pending horizon (the watchdog will catch
            // a genuine deadlock).
            return;
        }
        for core in &mut self.engine.cores {
            core.skip(delta);
        }
        self.fabric.net.advance_to(Cycle(now + delta));
        self.replay_skipped_samples(now + delta);
    }

    /// Advances the sharded network concurrently through a window where
    /// nothing outside it can act: every core is mid-gap or waiting
    /// ([`InOrderCore::next_wakeup`]), no timed event comes due, and no
    /// sample boundary is crossed (sampled columns like `net/flit_hops`
    /// *do* move inside a window, unlike in a dead span, so the window
    /// is capped strictly before the next boundary). Within those caps
    /// the network decides how far it can safely run from its own
    /// pillar-grant horizon ([`Network::advance_window`]) and advances
    /// bit-identically to ticking; the cores then batch-skip the same
    /// span. Runs right after [`System::try_fast_forward`], picking up
    /// traffic-heavy stretches that dead-span elision cannot touch.
    fn try_shard_window(&mut self) {
        if !self.skip || self.fabric.net.has_deliveries() {
            return;
        }
        let core_bound = self
            .engine
            .cores
            .iter()
            .map(|c| match c.next_wakeup() {
                u64::MAX => u64::MAX,
                wake => wake - 1,
            })
            .min()
            .unwrap_or(0);
        if core_bound == 0 {
            return;
        }
        let now = self.fabric.net.now().0;
        let mut end = now.saturating_add(core_bound);
        if let Some(&Reverse((due, _, _))) = self.fabric.events.peek() {
            end = end.min(due - 1);
        }
        if let Some(due) = self.fabric.next_modeled_at() {
            end = end.min(due.saturating_sub(1));
        }
        if let Some(boundary) = self.obs.next_sample_at() {
            end = end.min(boundary.saturating_sub(1));
        }
        if end <= now {
            return;
        }
        let advanced = self.fabric.net.advance_window(end);
        if advanced > 0 {
            for core in &mut self.engine.cores {
                core.skip(advanced);
            }
        }
    }

    /// The naive loop records a sample row at every armed boundary it
    /// ticks across; replay those rows after a dead-span skip so the
    /// sampler output is bit-identical. No sampled column changes inside
    /// a dead span, so each catch-up row carries the same values the
    /// per-cycle loop would have snapshotted. (Shard windows never need
    /// this: they are capped strictly before the next boundary.)
    fn replay_skipped_samples(&mut self, to: u64) {
        while let Some(boundary) = self.obs.next_sample_at() {
            if boundary > to {
                break;
            }
            self.record_obs_sample(boundary);
        }
    }
}
