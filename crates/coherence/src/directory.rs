//! Directory-based MSI coherence for private L1 caches (paper §5.1).
//!
//! The paper keeps the private L1s of the eight processors coherent with
//! a distributed directory implementing MSI; L1 events (read misses,
//! writes) drive state transitions and generate invalidation traffic that
//! the network simulation carries. This module is the protocol's
//! functional core: who may cache what, and which messages each access
//! must generate. Transport and timing belong to `nim-core`.

use nim_obs::{Category, EventData, Obs};
use nim_types::codec::{ByteReader, ByteWriter, Checkpoint, CodecError};
use nim_types::{CpuId, FxHashMap, LineAddr};

/// Global coherence state of one line across all L1s.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineState {
    /// No L1 holds the line.
    Invalid,
    /// One or more L1s hold a clean copy.
    Shared,
    /// Exactly one L1 holds a clean copy and may upgrade to `Modified`
    /// without any coherence traffic (MESI extension; write-back mode
    /// with [`Protocol::Mesi`] only).
    Exclusive,
    /// Exactly one L1 holds the line with write permission (write-back
    /// configurations only; the paper's write-through L1s never hold M).
    Modified,
}

/// Which protocol family the directory runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// The paper's protocol (§5.1).
    Msi,
    /// MESI: sole readers get an `Exclusive` copy, so private
    /// read-then-write sequences generate no invalidation traffic
    /// (an extension; meaningful with write-back L1s).
    Mesi,
}

/// What an L1 does with a line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirAccess {
    /// Load or instruction fetch.
    Read,
    /// Store.
    Write,
}

/// How stores interact with the next level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WritePolicy {
    /// Stores update L2 immediately; L1 copies stay clean (`Shared`).
    /// This is the paper's configuration (Table 4).
    WriteThrough,
    /// Stores dirty the L1 copy (`Modified`); eviction writes back.
    WriteBack,
}

/// The coherence actions one access requires.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoherenceOutcome {
    /// L1s that must invalidate their copy.
    pub invalidations: Vec<CpuId>,
    /// A previous owner must flush dirty data before the access proceeds
    /// (write-back mode only).
    pub flush_from: Option<CpuId>,
}

#[derive(Clone, Debug)]
struct Entry {
    state: LineState,
    sharers: u64,
}

impl Entry {
    fn sharer_list(&self) -> Vec<CpuId> {
        (0..64)
            .filter(|i| self.sharers & (1 << i) != 0)
            .map(|i| CpuId(i as u16))
            .collect()
    }
}

/// The directory: line → (state, sharer set).
///
/// Sharer sets are bitsets, so at most 64 CPUs are supported (the paper
/// uses 8).
#[derive(Clone, Debug)]
pub struct Directory {
    /// [`FxHashMap`]: looked up on every L1 fill/store completion with
    /// trusted line-address keys — SipHash is wasted work here.
    entries: FxHashMap<LineAddr, Entry>,
    policy: WritePolicy,
    protocol: Protocol,
    num_cpus: u32,
    /// Invalidation messages generated so far (for traffic accounting).
    pub invalidations_sent: u64,
    /// Observability sink; disabled by default.
    obs: Obs,
}

impl Directory {
    /// Creates an empty MSI directory for `num_cpus` processors (the
    /// paper's protocol).
    ///
    /// # Panics
    ///
    /// Panics if `num_cpus` exceeds 64.
    pub fn new(num_cpus: u32, policy: WritePolicy) -> Self {
        Self::with_protocol(num_cpus, policy, Protocol::Msi)
    }

    /// Creates a directory running the given protocol family.
    ///
    /// # Panics
    ///
    /// Panics if `num_cpus` exceeds 64.
    pub fn with_protocol(num_cpus: u32, policy: WritePolicy, protocol: Protocol) -> Self {
        assert!(num_cpus <= 64, "sharer bitset supports at most 64 CPUs");
        Self {
            entries: FxHashMap::default(),
            policy,
            protocol,
            num_cpus,
            invalidations_sent: 0,
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observability handle; invalidation events flow into
    /// it from now on.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Global state of a line.
    pub fn state(&self, line: LineAddr) -> LineState {
        self.entries
            .get(&line)
            .map_or(LineState::Invalid, |e| e.state)
    }

    /// CPUs currently holding the line.
    pub fn sharers(&self, line: LineAddr) -> Vec<CpuId> {
        self.entries
            .get(&line)
            .map_or_else(Vec::new, Entry::sharer_list)
    }

    /// Whether `cpu` holds the line.
    pub fn holds(&self, line: LineAddr, cpu: CpuId) -> bool {
        self.entries
            .get(&line)
            .is_some_and(|e| e.sharers & (1 << cpu.index()) != 0)
    }

    /// Processes an access by `cpu` and returns the required actions.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn access(&mut self, cpu: CpuId, line: LineAddr, access: DirAccess) -> CoherenceOutcome {
        assert!((cpu.index() as u32) < self.num_cpus, "unknown cpu {cpu}");
        let bit = 1u64 << cpu.index();
        let entry = self.entries.entry(line).or_insert(Entry {
            state: LineState::Invalid,
            sharers: 0,
        });
        let mut out = CoherenceOutcome::default();
        match access {
            DirAccess::Read => {
                if entry.state == LineState::Modified && entry.sharers != bit {
                    // Owner must provide data and demote to Shared.
                    out.flush_from = entry.sharer_list().first().copied();
                }
                entry.state = if entry.sharers == 0
                    && self.protocol == Protocol::Mesi
                    && self.policy == WritePolicy::WriteBack
                {
                    // Sole reader of an uncached line: Exclusive (MESI).
                    LineState::Exclusive
                } else if matches!(entry.state, LineState::Modified | LineState::Exclusive)
                    && entry.sharers == bit
                {
                    entry.state // silent re-read by the sole holder
                } else {
                    LineState::Shared
                };
                entry.sharers |= bit;
            }
            DirAccess::Write => {
                if entry.state == LineState::Modified && entry.sharers != bit {
                    out.flush_from = entry.sharer_list().first().copied();
                }
                let silent_upgrade = entry.state == LineState::Exclusive
                    && entry.sharers == bit
                    && self.policy == WritePolicy::WriteBack;
                // Everyone else invalidates.
                let others = entry.sharers & !bit;
                if others != 0 {
                    out.invalidations = Entry {
                        state: entry.state,
                        sharers: others,
                    }
                    .sharer_list();
                    self.invalidations_sent += out.invalidations.len() as u64;
                    for inv in &out.invalidations {
                        self.obs
                            .emit(Category::Coherence, || EventData::Invalidate {
                                line: line.0,
                                cpu: u32::from(inv.0),
                            });
                    }
                }
                entry.sharers = bit;
                entry.state = match self.policy {
                    WritePolicy::WriteThrough => LineState::Shared,
                    WritePolicy::WriteBack => LineState::Modified,
                };
                // The E→M transition is entirely local to the owner.
                debug_assert!(!silent_upgrade || out.invalidations.is_empty());
            }
        }
        out
    }

    /// Notes that `cpu` silently dropped the line (L1 eviction).
    ///
    /// Returns whether a dirty write-back is required (write-back mode,
    /// owner eviction).
    pub fn evict(&mut self, cpu: CpuId, line: LineAddr) -> bool {
        let bit = 1u64 << cpu.index();
        let Some(entry) = self.entries.get_mut(&line) else {
            return false;
        };
        let was_owner = entry.state == LineState::Modified && entry.sharers == bit;
        entry.sharers &= !bit;
        if entry.sharers == 0 {
            self.entries.remove(&line);
            // Exclusive copies are clean: only Modified writes back.
            return was_owner;
        }
        if was_owner {
            entry.state = LineState::Shared;
        }
        false
    }

    /// Invalidates every L1 copy (e.g. when the L2 evicts the line).
    /// Returns the CPUs that must be told.
    pub fn invalidate_all(&mut self, line: LineAddr) -> Vec<CpuId> {
        match self.entries.remove(&line) {
            Some(e) => {
                let list = e.sharer_list();
                self.invalidations_sent += list.len() as u64;
                if !list.is_empty() {
                    self.obs
                        .emit(Category::Coherence, || EventData::InvalidateAll {
                            line: line.0,
                            sharers: list.len() as u32,
                        });
                }
                list
            }
            None => Vec::new(),
        }
    }

    /// Number of lines the directory currently tracks.
    pub fn tracked_lines(&self) -> usize {
        self.entries.len()
    }

    /// Protocol invariant check, used by tests: `Modified` implies exactly
    /// one sharer; a tracked entry always has at least one sharer.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (line, e) in &self.entries {
            if e.sharers == 0 {
                return Err(format!("{line}: tracked with zero sharers"));
            }
            if matches!(e.state, LineState::Modified | LineState::Exclusive)
                && e.sharers.count_ones() != 1
            {
                return Err(format!("{line}: {:?} with multiple sharers", e.state));
            }
            if e.state == LineState::Invalid {
                return Err(format!("{line}: tracked but Invalid"));
            }
        }
        Ok(())
    }
}

impl Checkpoint for Directory {
    fn save(&self, w: &mut ByteWriter) {
        w.u64(self.invalidations_sent);
        // Key-sorted for deterministic bytes regardless of hash-map
        // iteration order.
        let mut lines: Vec<&LineAddr> = self.entries.keys().collect();
        lines.sort_unstable();
        w.u32(lines.len() as u32);
        for line in lines {
            let e = &self.entries[line];
            w.u64(line.0);
            w.u8(match e.state {
                LineState::Invalid => 0,
                LineState::Shared => 1,
                LineState::Exclusive => 2,
                LineState::Modified => 3,
            });
            w.u64(e.sharers);
        }
    }

    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.invalidations_sent = r.u64()?;
        let count = r.u32()? as usize;
        self.entries = FxHashMap::default();
        self.entries.reserve(count);
        for _ in 0..count {
            let line = LineAddr(r.u64()?);
            let state = match r.u8()? {
                0 => LineState::Invalid,
                1 => LineState::Shared,
                2 => LineState::Exclusive,
                3 => LineState::Modified,
                _ => return Err(CodecError::Corrupt("bad line state tag")),
            };
            let sharers = r.u64()?;
            self.entries.insert(line, Entry { state, sharers });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(policy: WritePolicy) -> Directory {
        Directory::new(8, policy)
    }

    const LINE: LineAddr = LineAddr(0x1000);

    #[test]
    fn first_read_installs_shared() {
        let mut d = dir(WritePolicy::WriteThrough);
        let out = d.access(CpuId(0), LINE, DirAccess::Read);
        assert!(out.invalidations.is_empty());
        assert_eq!(d.state(LINE), LineState::Shared);
        assert_eq!(d.sharers(LINE), vec![CpuId(0)]);
        d.check_invariants().unwrap();
    }

    #[test]
    fn write_invalidates_other_sharers() {
        let mut d = dir(WritePolicy::WriteThrough);
        for c in 0..4 {
            d.access(CpuId(c), LINE, DirAccess::Read);
        }
        let out = d.access(CpuId(0), LINE, DirAccess::Write);
        let mut inv = out.invalidations.clone();
        inv.sort_unstable();
        assert_eq!(inv, vec![CpuId(1), CpuId(2), CpuId(3)]);
        assert_eq!(d.sharers(LINE), vec![CpuId(0)]);
        assert_eq!(
            d.state(LINE),
            LineState::Shared,
            "write-through leaves the writer clean"
        );
        assert_eq!(d.invalidations_sent, 3);
        d.check_invariants().unwrap();
    }

    #[test]
    fn write_back_write_takes_ownership() {
        let mut d = dir(WritePolicy::WriteBack);
        d.access(CpuId(1), LINE, DirAccess::Write);
        assert_eq!(d.state(LINE), LineState::Modified);
        // Another reader forces a flush from the owner.
        let out = d.access(CpuId(2), LINE, DirAccess::Read);
        assert_eq!(out.flush_from, Some(CpuId(1)));
        assert_eq!(d.state(LINE), LineState::Shared);
        let mut sharers = d.sharers(LINE);
        sharers.sort_unstable();
        assert_eq!(sharers, vec![CpuId(1), CpuId(2)]);
        d.check_invariants().unwrap();
    }

    #[test]
    fn owner_re_read_stays_modified_silently() {
        let mut d = dir(WritePolicy::WriteBack);
        d.access(CpuId(1), LINE, DirAccess::Write);
        let out = d.access(CpuId(1), LINE, DirAccess::Read);
        assert_eq!(out, CoherenceOutcome::default());
        assert_eq!(d.state(LINE), LineState::Modified);
    }

    #[test]
    fn write_after_write_transfers_ownership() {
        let mut d = dir(WritePolicy::WriteBack);
        d.access(CpuId(1), LINE, DirAccess::Write);
        let out = d.access(CpuId(2), LINE, DirAccess::Write);
        assert_eq!(out.invalidations, vec![CpuId(1)]);
        assert_eq!(out.flush_from, Some(CpuId(1)));
        assert_eq!(d.sharers(LINE), vec![CpuId(2)]);
        d.check_invariants().unwrap();
    }

    #[test]
    fn eviction_drops_the_sharer_and_reports_writeback() {
        let mut d = dir(WritePolicy::WriteBack);
        d.access(CpuId(3), LINE, DirAccess::Write);
        assert!(d.evict(CpuId(3), LINE), "dirty owner eviction writes back");
        assert_eq!(d.state(LINE), LineState::Invalid);
        assert_eq!(d.tracked_lines(), 0);

        d.access(CpuId(0), LINE, DirAccess::Read);
        d.access(CpuId(1), LINE, DirAccess::Read);
        assert!(!d.evict(CpuId(0), LINE), "clean eviction is silent");
        assert_eq!(d.sharers(LINE), vec![CpuId(1)]);
        d.check_invariants().unwrap();
    }

    #[test]
    fn invalidate_all_notifies_every_sharer() {
        let mut d = dir(WritePolicy::WriteThrough);
        for c in [0u16, 3, 7] {
            d.access(CpuId(c), LINE, DirAccess::Read);
        }
        let mut told = d.invalidate_all(LINE);
        told.sort_unstable();
        assert_eq!(told, vec![CpuId(0), CpuId(3), CpuId(7)]);
        assert_eq!(d.state(LINE), LineState::Invalid);
        assert!(d.invalidate_all(LINE).is_empty(), "idempotent");
    }

    #[test]
    fn holds_tracks_individual_cpus() {
        let mut d = dir(WritePolicy::WriteThrough);
        d.access(CpuId(2), LINE, DirAccess::Read);
        assert!(d.holds(LINE, CpuId(2)));
        assert!(!d.holds(LINE, CpuId(3)));
    }

    #[test]
    #[should_panic(expected = "unknown cpu")]
    fn out_of_range_cpu_panics() {
        let mut d = dir(WritePolicy::WriteThrough);
        d.access(CpuId(9), LINE, DirAccess::Read);
    }

    fn mesi() -> Directory {
        Directory::with_protocol(8, WritePolicy::WriteBack, Protocol::Mesi)
    }

    #[test]
    fn mesi_sole_reader_gets_exclusive() {
        let mut d = mesi();
        let out = d.access(CpuId(0), LINE, DirAccess::Read);
        assert_eq!(out, CoherenceOutcome::default());
        assert_eq!(d.state(LINE), LineState::Exclusive);
        assert_eq!(d.sharers(LINE), vec![CpuId(0)]);
        d.check_invariants().unwrap();
    }

    #[test]
    fn mesi_silent_upgrade_to_modified() {
        let mut d = mesi();
        d.access(CpuId(0), LINE, DirAccess::Read);
        let out = d.access(CpuId(0), LINE, DirAccess::Write);
        assert!(out.invalidations.is_empty(), "E→M needs no traffic");
        assert_eq!(out.flush_from, None);
        assert_eq!(d.state(LINE), LineState::Modified);
        d.check_invariants().unwrap();
    }

    #[test]
    fn mesi_second_reader_demotes_to_shared_without_flush() {
        let mut d = mesi();
        d.access(CpuId(0), LINE, DirAccess::Read);
        let out = d.access(CpuId(1), LINE, DirAccess::Read);
        assert_eq!(out.flush_from, None, "Exclusive copies are clean");
        assert_eq!(d.state(LINE), LineState::Shared);
        assert_eq!(d.sharers(LINE).len(), 2);
        d.check_invariants().unwrap();
    }

    #[test]
    fn mesi_exclusive_eviction_is_silent() {
        let mut d = mesi();
        d.access(CpuId(3), LINE, DirAccess::Read);
        assert!(
            !d.evict(CpuId(3), LINE),
            "an Exclusive (clean) copy needs no write-back"
        );
        assert_eq!(d.state(LINE), LineState::Invalid);
    }

    #[test]
    fn checkpoint_round_trips_directory_state() {
        let mut d = dir(WritePolicy::WriteThrough);
        for c in 0..4 {
            d.access(CpuId(c), LINE, DirAccess::Read);
        }
        d.access(CpuId(0), LINE, DirAccess::Write);
        d.access(CpuId(1), LineAddr(0x2000), DirAccess::Read);

        let mut w = nim_types::ByteWriter::new();
        d.save(&mut w);
        let bytes = w.into_bytes();

        let mut fresh = dir(WritePolicy::WriteThrough);
        let mut r = nim_types::ByteReader::new(&bytes);
        fresh.restore(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(fresh.invalidations_sent, d.invalidations_sent);
        assert_eq!(fresh.tracked_lines(), d.tracked_lines());
        assert_eq!(fresh.state(LINE), d.state(LINE));
        assert_eq!(fresh.sharers(LINE), d.sharers(LINE));
        assert_eq!(fresh.state(LineAddr(0x2000)), LineState::Shared);
        fresh.check_invariants().unwrap();

        // Saving the restored copy reproduces the same bytes.
        let mut w2 = nim_types::ByteWriter::new();
        fresh.save(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn checkpoint_rejects_bad_state_tag() {
        let mut d = dir(WritePolicy::WriteThrough);
        d.access(CpuId(0), LINE, DirAccess::Read);
        let mut w = nim_types::ByteWriter::new();
        d.save(&mut w);
        let mut bytes = w.into_bytes();
        // invalidations (8) + count (4) + line (8) → state tag at byte 20.
        bytes[20] = 0xee;
        let mut fresh = dir(WritePolicy::WriteThrough);
        let mut r = nim_types::ByteReader::new(&bytes);
        assert!(fresh.restore(&mut r).is_err());
    }

    #[test]
    fn msi_never_produces_exclusive() {
        let mut d = Directory::with_protocol(8, WritePolicy::WriteBack, Protocol::Msi);
        d.access(CpuId(0), LINE, DirAccess::Read);
        assert_eq!(d.state(LINE), LineState::Shared, "MSI has no E state");
    }
}
