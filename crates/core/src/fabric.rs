//! The seam between protocol decisions and the simulation fabric.
//!
//! The L2 protocol engine ([`Engine`](crate::protocol::Engine)) never
//! touches [`Network`] or the timed-event heap directly: every packet
//! send, every scheduled latency, and every shared-resource claim goes
//! through the [`Fabric`] trait. Two implementations exist:
//!
//! * [`SimFabric`] — the real thing: the cycle-accurate 3D NoC, the
//!   timed-event heap, the contention-aware [`timing`](crate::timing)
//!   models, and the observability handle.
//! * [`TestFabric`] — a recording double for unit tests: sends and
//!   scheduled events land in inspectable queues, resource claims use
//!   the same timing models, and no network is ever constructed.
//!
//! This seam is what makes the protocol transitions unit-testable and
//! is the hook for alternative execution substrates: [`SimFabric`] can
//! swap its flit-level network for an analytic latency model
//! ([`FabricKind::LatencyTable`] / [`FabricKind::Ideal`]) without the
//! protocol code changing.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use nim_noc::{zero_load_path, Network, SendRequest};
use nim_obs::{Category, EventData, Obs};
use nim_topology::{MeshTopology, Topology};
use nim_types::codec::{ByteReader, ByteWriter, Checkpoint, CodecError};
use nim_types::{ClusterId, Coord, Cycle, NetworkConfig, PacketId, PillarId};

use crate::timing::{Banks, MemoryChannels, TagArrays};
use crate::token::{TimedEvent, Token};

// Protocol code imports the passive message types through this seam so
// `protocol.rs` never names the `nim_noc` crate directly. The
// queue/service delay split rides along for latency attribution.
pub(crate) use crate::timing::ClaimedDelay;
pub(crate) use nim_noc::{Delivered, TrafficClass};

/// Everything the protocol engine may ask of the simulation substrate.
///
/// The methods are deliberately narrow: inject one packet, schedule one
/// timed event, claim one shared resource (tag array, data bank, DRAM
/// channel) and learn when it completes, and reach the observability
/// handle. Protocol handlers hold no other channel to the outside
/// world, so swapping the substrate (test double today, sharded
/// execution tomorrow) cannot change protocol behavior.
pub(crate) trait Fabric {
    /// Injects one packet into the interconnect; `token` comes back via
    /// the delivery path when the packet reaches `dst`.
    fn send(
        &mut self,
        src: Coord,
        dst: Coord,
        class: TrafficClass,
        flits: u32,
        token: Token,
        via: Option<PillarId>,
    );

    /// Schedules `ev` to fire `delay` cycles after `now`. Events due the
    /// same cycle fire in scheduling order.
    fn schedule(&mut self, now: Cycle, delay: u64, ev: TimedEvent);

    /// Claims `cluster`'s tag array for one probe; returns the latency
    /// until the lookup completes, split into queueing and service.
    fn tag_delay(&mut self, cluster: ClusterId, now: Cycle) -> ClaimedDelay;

    /// Claims the data bank at node index `node` for one access; returns
    /// the latency until it completes, split into queueing and service.
    /// `write` distinguishes stores/fills/migration absorbs from reads
    /// in the trace.
    fn bank_delay(&mut self, node: usize, now: Cycle, write: bool) -> ClaimedDelay;

    /// Claims memory controller `mc`'s DRAM channel; returns the
    /// latency until the DRAM access completes, split into bandwidth
    /// queueing and the DRAM access itself.
    fn memory_delay(&mut self, mc: usize, now: Cycle) -> ClaimedDelay;

    /// The observability handle protocol code emits events and metrics
    /// through (disabled by default: one branch per site).
    fn obs(&self) -> &Obs;
}

/// Which interconnect substrate a run simulates. Selected at build time
/// ([`SystemBuilder::fabric`](crate::SystemBuilder::fabric)); the
/// protocol engine cannot tell them apart.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum FabricKind {
    /// The cycle-accurate flit-level NoC: wormhole meshes, virtual
    /// channels, switch arbitration, dTDMA pillar buses (the default).
    #[default]
    Sim,
    /// Analytic latency-table fabric: every packet's latency comes from
    /// the validated zero-load model ([`nim_noc::zero_load_path`]) with
    /// hop costs precomputed per topology, plus a per-pillar ready-at
    /// table that serialises dTDMA grants — no per-flit simulation.
    /// Mesh-link contention is not modeled.
    LatencyTable,
    /// Ideal contention-free fabric: pure zero-load latency for every
    /// packet, with no shared-resource state at all. The upper bound a
    /// real interconnect is measured against.
    Ideal,
}

impl FabricKind {
    /// Every kind, in CLI listing order.
    pub const ALL: [FabricKind; 3] = [FabricKind::Sim, FabricKind::LatencyTable, FabricKind::Ideal];

    /// The CLI-facing name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            FabricKind::Sim => "sim",
            FabricKind::LatencyTable => "latency-table",
            FabricKind::Ideal => "ideal",
        }
    }

    /// Parses a CLI-facing name; the unknown input comes back as `Err`.
    ///
    /// # Errors
    ///
    /// Returns the input string if it names no fabric kind.
    pub fn parse(s: &str) -> Result<Self, &str> {
        Self::ALL.into_iter().find(|k| k.name() == s).ok_or(s)
    }
}

impl std::fmt::Display for FabricKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The analytic timing engine behind [`FabricKind::LatencyTable`] and
/// [`FabricKind::Ideal`]: zero-load path costs from the topology, plus
/// (latency-table only) a per-pillar ready-at table that replays the
/// dTDMA bus's serialisation — the dominant shared resource in the
/// paper's design — without simulating flits.
#[derive(Debug)]
pub(crate) struct LatencyModel {
    topo: MeshTopology,
    router_latency: u64,
    bus_k: u64,
    /// Earliest cycle each pillar's bus can issue its next grant. Empty
    /// in the ideal fabric, which models no contention at all.
    ready_at: Vec<u64>,
}

impl LatencyModel {
    /// A latency-table model (pillar serialisation on) for `topo`.
    pub(crate) fn latency_table(topo: MeshTopology, net: &NetworkConfig) -> Self {
        let pillars = topo.num_pillars() as usize;
        Self::build(topo, net, vec![0; pillars])
    }

    /// An ideal contention-free model for `topo`.
    pub(crate) fn ideal(topo: MeshTopology, net: &NetworkConfig) -> Self {
        Self::build(topo, net, Vec::new())
    }

    fn build(topo: MeshTopology, net: &NetworkConfig, ready_at: Vec<u64>) -> Self {
        Self {
            topo,
            router_latency: u64::from(net.router_latency),
            bus_k: u64::from(net.bus_cycles_per_flit()),
            ready_at,
        }
    }
}

/// A delivery synthesized by the [`LatencyModel`], ordered by
/// `(due, seq)` so same-cycle deliveries pop in send order — the same
/// tie-break the timed-event heap uses.
#[derive(Debug)]
struct Modeled {
    due: u64,
    seq: u64,
    delivery: Delivered,
}

impl PartialEq for Modeled {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}
impl Eq for Modeled {}
impl PartialOrd for Modeled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Modeled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// The real fabric: the 3D NoC, the timed-event heap, and the shared
/// resource timing models, owned together so the run loop in
/// [`System`](crate::System) can drive phases and fast-forward while
/// protocol code stays behind the [`Fabric`] trait.
///
/// With a [`LatencyModel`] attached, sends bypass the flit-level
/// network entirely: each packet's delivery is computed analytically at
/// injection and queued on the modeled-delivery heap, which the run
/// loop drains alongside network deliveries. The network object remains
/// the clock owner but never carries traffic, so its statistics stay
/// zero under modeled fabrics.
#[derive(Debug)]
pub(crate) struct SimFabric {
    /// The cycle-accurate 3D mesh + dTDMA pillar network.
    pub(crate) net: Network,
    /// Timed events, keyed by `(due_cycle, sequence)` so same-cycle
    /// events fire in scheduling order.
    pub(crate) events: BinaryHeap<Reverse<(u64, u64, TimedEvent)>>,
    next_seq: u64,
    /// `Some` for modeled fabrics; `None` runs the flit-level network.
    model: Option<LatencyModel>,
    /// Deliveries synthesized by the model, due at `Modeled::due`.
    modeled: BinaryHeap<Reverse<Modeled>>,
    modeled_seq: u64,
    tags: TagArrays,
    banks: Banks,
    memory: MemoryChannels,
    obs: Obs,
}

impl SimFabric {
    pub(crate) fn new(
        net: Network,
        model: Option<LatencyModel>,
        tags: TagArrays,
        banks: Banks,
        memory: MemoryChannels,
        obs: Obs,
    ) -> Self {
        Self {
            net,
            events: BinaryHeap::new(),
            next_seq: 0,
            model,
            modeled: BinaryHeap::new(),
            modeled_seq: 0,
            tags,
            banks,
            memory,
            obs,
        }
    }

    /// Accesses each bank performed so far (node-indexed), for
    /// activity-driven power and thermal analysis.
    pub(crate) fn bank_access_counts(&self) -> &[u64] {
        self.banks.access_counts()
    }

    /// Whether any modeled delivery is still queued (always `false`
    /// under [`FabricKind::Sim`]).
    pub(crate) fn has_modeled(&self) -> bool {
        !self.modeled.is_empty()
    }

    /// The due cycle of the earliest queued modeled delivery.
    pub(crate) fn next_modeled_at(&self) -> Option<u64> {
        self.modeled.peek().map(|Reverse(m)| m.due)
    }

    /// Pops the earliest modeled delivery if it is due at or before
    /// `now`.
    pub(crate) fn pop_modeled(&mut self, now: u64) -> Option<Delivered> {
        if self.modeled.peek().is_some_and(|Reverse(m)| m.due <= now) {
            self.modeled.pop().map(|Reverse(m)| m.delivery)
        } else {
            None
        }
    }

    /// Computes one packet's delivery analytically and queues it.
    fn send_modeled(
        &mut self,
        src: Coord,
        dst: Coord,
        class: TrafficClass,
        flits: u32,
        token: Token,
        via: Option<PillarId>,
    ) {
        let model = self.model.as_mut().expect("modeled send requires a model");
        let now = self.net.now();
        let path = zero_load_path(
            &model.topo,
            src,
            dst,
            via,
            flits,
            model.router_latency,
            model.bus_k,
        );
        let mut latency = path.latency;
        let mut bus_wait = path.bus_wait;
        if let Some(p) = path.pillar {
            if let Some(slot) = model.ready_at.get_mut(p.0 as usize) {
                // The head flit reaches the pillar's transceiver
                // `bus_enqueue` cycles after the send and becomes
                // grant-eligible one cycle later; an earlier packet's
                // serialisation window pushes the grant (and the whole
                // delivery) back by `delta`, which the tail flit
                // experiences as extra bus wait.
                let uncontended = now.0 + path.bus_enqueue + 1;
                let grant = uncontended.max(*slot);
                let delta = grant - uncontended;
                latency += delta;
                bus_wait = bus_wait.saturating_add(u32::try_from(delta).unwrap_or(u32::MAX));
                *slot = grant + u64::from(flits) * model.bus_k;
            }
        }
        self.modeled_seq += 1;
        let due = now.0 + latency;
        self.modeled.push(Reverse(Modeled {
            due,
            seq: self.modeled_seq,
            delivery: Delivered {
                packet: PacketId(self.modeled_seq),
                src,
                dst,
                class,
                token: token.encode(),
                injected: now,
                delivered: Cycle(due),
                hops: path.hops,
                bus_wait,
            },
        }));
    }
}

impl Checkpoint for SimFabric {
    fn save(&self, w: &mut ByteWriter) {
        self.net.save(w);
        // The heaps iterate in arbitrary order; sort by the unique
        // (due, seq) key for a canonical encoding.
        let mut evs: Vec<(u64, u64, TimedEvent)> =
            self.events.iter().map(|Reverse(t)| *t).collect();
        evs.sort_unstable_by_key(|&(due, seq, _)| (due, seq));
        w.u32(evs.len() as u32);
        for (due, seq, ev) in &evs {
            w.u64(*due);
            w.u64(*seq);
            ev.save(w);
        }
        w.u64(self.next_seq);
        match &self.model {
            None => w.u8(0),
            Some(m) => {
                w.u8(1);
                w.u64_slice(&m.ready_at);
            }
        }
        let mut modeled: Vec<&Modeled> = self.modeled.iter().map(|Reverse(m)| m).collect();
        modeled.sort_unstable_by_key(|m| (m.due, m.seq));
        w.u32(modeled.len() as u32);
        for m in modeled {
            w.u64(m.due);
            w.u64(m.seq);
            m.delivery.save(w);
        }
        w.u64(self.modeled_seq);
        self.tags.save(w);
        self.banks.save(w);
        self.memory.save(w);
    }

    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.net.restore(r)?;
        self.events.clear();
        for _ in 0..r.u32()? {
            let due = r.u64()?;
            let seq = r.u64()?;
            self.events
                .push(Reverse((due, seq, TimedEvent::restore(r)?)));
        }
        self.next_seq = r.u64()?;
        match (r.u8()?, &mut self.model) {
            (0, None) => {}
            (1, Some(m)) => {
                let ready = r.u64_vec()?;
                if ready.len() != m.ready_at.len() {
                    return Err(CodecError::Corrupt("fabric model mismatch"));
                }
                m.ready_at = ready;
            }
            (0 | 1, _) => return Err(CodecError::Corrupt("fabric model mismatch")),
            _ => return Err(CodecError::Corrupt("bad fabric model tag")),
        }
        self.modeled.clear();
        for _ in 0..r.u32()? {
            let due = r.u64()?;
            let seq = r.u64()?;
            self.modeled.push(Reverse(Modeled {
                due,
                seq,
                delivery: Delivered::restore(r)?,
            }));
        }
        self.modeled_seq = r.u64()?;
        self.tags.restore(r)?;
        self.banks.restore(r)?;
        self.memory.restore(r)
    }
}

impl Fabric for SimFabric {
    fn send(
        &mut self,
        src: Coord,
        dst: Coord,
        class: TrafficClass,
        flits: u32,
        token: Token,
        via: Option<PillarId>,
    ) {
        if self.model.is_some() {
            self.send_modeled(src, dst, class, flits, token, via);
            return;
        }
        self.net.send(SendRequest {
            src,
            dst,
            via,
            class,
            flits,
            token: token.encode(),
        });
    }

    fn schedule(&mut self, now: Cycle, delay: u64, ev: TimedEvent) {
        self.next_seq += 1;
        self.events
            .push(Reverse((now.0 + delay, self.next_seq, ev)));
    }

    fn tag_delay(&mut self, cluster: ClusterId, now: Cycle) -> ClaimedDelay {
        self.tags.claim(cluster, now)
    }

    fn bank_delay(&mut self, node: usize, now: Cycle, write: bool) -> ClaimedDelay {
        self.obs.emit(Category::Bank, || EventData::BankAccess {
            node: node as u32,
            write,
        });
        self.banks.claim(node, now)
    }

    fn memory_delay(&mut self, mc: usize, now: Cycle) -> ClaimedDelay {
        self.memory.claim(mc, now)
    }

    fn obs(&self) -> &Obs {
        &self.obs
    }
}

/// A recording test double: protocol transitions run against real
/// timing models, but packets land in [`TestFabric::sent`] and timed
/// events in [`TestFabric::events`] instead of a network. Tests pump
/// both queues by hand (or via the helpers in the protocol unit tests)
/// to walk a transaction through its whole lifecycle without a NoC.
#[cfg(test)]
#[derive(Debug)]
pub(crate) struct TestFabric {
    /// Every packet sent, in order.
    pub(crate) sent: Vec<SendRequest>,
    /// Scheduled events, keyed like the real heap.
    pub(crate) events: BinaryHeap<Reverse<(u64, u64, TimedEvent)>>,
    next_seq: u64,
    tags: TagArrays,
    banks: Banks,
    memory: MemoryChannels,
    obs: Obs,
}

#[cfg(test)]
impl TestFabric {
    pub(crate) fn new(clusters: usize, nodes: usize, controllers: usize) -> Self {
        // The paper's Table 4 latencies, so unit-test delays line up
        // with what the real system charges.
        let cfg = nim_types::SystemConfig::default();
        Self {
            sent: Vec::new(),
            events: BinaryHeap::new(),
            next_seq: 0,
            tags: TagArrays::new(clusters, u64::from(cfg.l2.tag_latency)),
            banks: Banks::new(nodes, u64::from(cfg.l2.bank_latency)),
            memory: MemoryChannels::new(
                controllers.max(1),
                u64::from(cfg.memory_interval),
                u64::from(cfg.memory_latency),
            ),
            obs: Obs::disabled(),
        }
    }

    /// Pops the earliest scheduled event, if any.
    pub(crate) fn pop_event(&mut self) -> Option<(u64, TimedEvent)> {
        self.events.pop().map(|Reverse((due, _, ev))| (due, ev))
    }

    /// Drains and returns everything sent so far.
    pub(crate) fn take_sent(&mut self) -> Vec<SendRequest> {
        std::mem::take(&mut self.sent)
    }
}

#[cfg(test)]
impl Fabric for TestFabric {
    fn send(
        &mut self,
        src: Coord,
        dst: Coord,
        class: TrafficClass,
        flits: u32,
        token: Token,
        via: Option<PillarId>,
    ) {
        self.sent.push(SendRequest {
            src,
            dst,
            via,
            class,
            flits,
            token: token.encode(),
        });
    }

    fn schedule(&mut self, now: Cycle, delay: u64, ev: TimedEvent) {
        self.next_seq += 1;
        self.events
            .push(Reverse((now.0 + delay, self.next_seq, ev)));
    }

    fn tag_delay(&mut self, cluster: ClusterId, now: Cycle) -> ClaimedDelay {
        self.tags.claim(cluster, now)
    }

    fn bank_delay(&mut self, node: usize, now: Cycle, _write: bool) -> ClaimedDelay {
        self.banks.claim(node, now)
    }

    fn memory_delay(&mut self, mc: usize, now: Cycle) -> ClaimedDelay {
        self.memory.claim(mc, now)
    }

    fn obs(&self) -> &Obs {
        &self.obs
    }
}
