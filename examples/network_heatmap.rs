//! Network utilisation heat map: where do flits actually travel on each
//! layer of the 3D chip, and how does traffic concentrate around the
//! communication pillars?
//!
//! Runs CMP-DNUCA-3D on wupwise with an observability handle attached
//! and renders the `noc/traversals/x/y/z` counters the system publishes
//! into the metrics registry as ASCII intensity maps (`C` overlays CPU
//! seats), plus the per-pillar dTDMA bus totals.
//!
//! ```sh
//! cargo run --release --example network_heatmap
//! ```

use std::error::Error;

use network_in_memory::core::{Scheme, SystemBuilder};
use network_in_memory::obs::{Obs, ObsConfig};
use network_in_memory::types::Coord;
use network_in_memory::workload::BenchmarkProfile;

fn main() -> Result<(), Box<dyn Error>> {
    let obs = Obs::new(ObsConfig::default());
    let mut system = SystemBuilder::new(Scheme::CmpDnuca3d)
        .seed(21)
        .warmup_transactions(1_000)
        .sampled_transactions(15_000)
        .observability(obs.clone())
        .build()?;
    let report = system.run(&BenchmarkProfile::wupwise())?;
    println!(
        "CMP-DNUCA-3D on wupwise: {} packets, {} flit-hops, {} bus transfers\n",
        report.network.packets_delivered, report.network.flit_hops, report.bus_transfers
    );

    // The run published per-router link utilisation into the metrics
    // registry; render the heat map from those counters alone.
    let layout = system.layout().clone();
    let seats: Vec<Coord> = system.seats().iter().map(|s| s.coord).collect();
    let traversal = |c: Coord| obs.counter(&format!("noc/traversals/{}/{}/{}", c.x, c.y, c.layer));
    let peak = (0..layout.num_nodes())
        .map(|i| traversal(layout.coord_of_index(i)))
        .max()
        .unwrap_or(1)
        .max(1);
    let ramp = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

    for layer in 0..layout.layers() {
        println!("layer {layer} (router flit traversals; C = CPU seat):");
        for y in (0..layout.height()).rev() {
            let mut row = String::from("    |");
            for x in 0..layout.width() {
                let c = Coord::new(x, y, layer);
                if seats.contains(&c) {
                    row.push('C');
                    continue;
                }
                let t = traversal(c);
                let idx = (t as f64 / peak as f64 * (ramp.len() - 1) as f64).round() as usize;
                row.push(ramp[idx.min(ramp.len() - 1)]);
            }
            row.push('|');
            println!("{row}");
        }
        println!();
    }
    println!("pillar buses (dTDMA):");
    for p in 0..system.config().network.pillars {
        println!(
            "    pillar {p}: {:>7} transfers, {:>7} contention cycles, peak queue {}",
            obs.counter(&format!("pillar/{p}/transfers")),
            obs.counter(&format!("pillar/{p}/contention_cycles")),
            obs.counter(&format!("pillar/{p}/peak_queued")),
        );
    }
    println!(
        "\nbusiest router carries {peak} flit traversals; traffic concentrates\n\
         around the CPU/pillar sites — the congestion the placement rules of\n\
         §3.3 (pillars far apart, CPUs offset) are designed to spread out."
    );
    Ok(())
}
