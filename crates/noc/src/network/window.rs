//! The conservative shard-window executor.
//!
//! Between two dTDMA pillar grants, every shard (contiguous layer
//! group) evolves independently: router-phase moves stay on a layer,
//! vertical moves only fill the sender's own transceiver interface, and
//! injection is node-local. [`Network::advance_window`] exploits this to
//! run all shards *concurrently* over a window of cycles, with a
//! barrier at each window end where the sequential bus phase resumes.
//!
//! # Soundness
//!
//! A window `[now+1, end]` is safe iff no *coupling event* can occur in
//! it: a bus grant (the only cross-shard mutation, and the only place
//! bus statistics or contention are recorded) or a local delivery (the
//! only network event the engine observes). [`Network::window_horizon`]
//! lower-bounds the earliest possible coupling event from first
//! principles:
//!
//! * every router traversal costs at least `router_latency` dwell (a
//!   moved flit is restamped `arrived = now`), so a flit at Manhattan
//!   distance `d` from its goal needs at least `d` traversals, each
//!   `router_latency` apart, before it can matter;
//! * a bus grant requires the flit queued at a transceiver interface
//!   one full cycle, after the bus's serialisation window
//!   (`bus_ready_at`) expires — the multi-cycle grant latency of the
//!   dTDMA pillar is exactly the lookahead that makes windows non-empty;
//! * a VC only ever holds flits of one packet (the owner protocol in
//!   `vc.rs`), and at most one flit per input port moves per cycle, so
//!   scanning only VC *front* flits bounds every queued flit: the k-th
//!   flit behind a front cannot beat the front's bound by construction.
//!
//! Cycles inside the window are then run per shard by
//! [`Lane::run_window`] — the same phase code as the sequential tick —
//! and are bit-identical to ticking: within a cycle, shard-order
//! processing equals global node-order processing because node indexing
//! is layer-major.
//!
//! # Determinism
//!
//! Worker threads claim whole shards from an atomic cursor; no two
//! threads ever touch the same shard, and shards share no mutable
//! state, so the interleaving cannot influence results. Trace (`FlitHop`)
//! events are deferred into per-shard buffers and replayed at the
//! barrier in (cycle, shard) order — exactly the order the sequential
//! engine would have emitted them.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use nim_obs::{Category, EventData};
use nim_types::{Coord, Cycle, PillarId};

use super::lane::{Lane, WindowSink};
use super::Network;

/// Windows shorter than this run inline on the calling thread: spawning
/// scoped workers costs more than it saves on a short window. Results
/// are bit-identical either way.
pub(super) const DEFAULT_SPAWN_MIN: u64 = 16;

impl Network {
    /// Advances every shard concurrently to `min(max_end, horizon - 1)`,
    /// where the horizon is the earliest cycle a coupling event (bus
    /// grant or delivery) could possibly occur. Returns the number of
    /// cycles advanced (0 when sharding is off, `max_end` is not ahead,
    /// or a coupling event is imminent).
    ///
    /// The caller must ensure nothing *outside* the network is due in
    /// the window (core wakeups, engine events, observability sample
    /// boundaries) — the network itself is advanced bit-identically to
    /// ticking `max_end - now` times.
    pub fn advance_window(&mut self, max_end: u64) -> u64 {
        if self.shards.len() <= 1 {
            return 0;
        }
        let start = self.now.0;
        if max_end <= start {
            return 0;
        }
        let end = max_end.min(self.window_horizon().saturating_sub(1));
        if end <= start {
            return 0;
        }
        debug_assert!(
            !self.has_deliveries(),
            "undrained deliveries at window start"
        );
        let record = self.obs.wants(Category::Hop);
        self.run_lanes(start + 1, end, record);
        self.settle_touched();
        self.now = Cycle(end);
        self.replay_hops();
        self.obs.set_now(end);
        end - start
    }

    /// Lower-bounds the earliest future cycle at which a coupling event
    /// — a dTDMA bus grant or a local delivery — could occur, scanning
    /// every queue a flit can sit in. `u64::MAX` when nothing is in
    /// flight.
    fn window_horizon(&self) -> u64 {
        let next = self.now.0 + 1;
        let mut horizon = u64::MAX;
        for st in &self.shards {
            // Buffered flits: VC fronts bound everything behind them.
            for &n in &st.dirty {
                let r = &self.routers[n as usize];
                if r.occupancy == 0 {
                    continue;
                }
                for port in r.inputs.iter().flatten() {
                    for vc in 0..self.vcs {
                        let Some(f) = port.vc(vc).front(&st.arena) else {
                            continue;
                        };
                        let movable = (f.arrived.0 + self.router_latency).max(next);
                        horizon = horizon.min(self.flit_bound(r.coord, f.dst, f.via, movable));
                    }
                }
            }
            // Pending injections: every queued packet can start flowing
            // inside a long window, so bound each one. Packet k's first
            // remaining flit enters a local VC no earlier than one cycle
            // per flit still ahead of it in the queue, then dwells
            // before moving.
            for &n in &st.inj_active {
                let mut flits_ahead = 0u64;
                for p in &self.injectors[n as usize].queue {
                    let movable = next + flits_ahead + self.router_latency;
                    horizon =
                        horizon.min(self.flit_bound(p.req.src, p.req.dst, p.req.via, movable));
                    flits_ahead += u64::from(p.req.flits - p.seq);
                }
            }
        }
        // Flits already queued at transceiver interfaces: a grant needs
        // one full cycle at the interface and a free bus.
        for &b in &self.bus_active {
            let b = b as usize;
            let mut front = u64::MAX;
            for layer in 0..self.layout.layers() {
                let (s, i) = self.iface_pos(b, layer);
                if let Some(f) = self.shards[s].ifaces[i].q.front(&self.shards[s].arena) {
                    front = front.min(f.arrived.0 + 1);
                }
            }
            if front != u64::MAX {
                horizon = horizon.min(front.max(self.bus_ready_at[b]).max(next));
            }
        }
        horizon
    }

    /// The earliest cycle a flit at `at`, first movable at `movable`,
    /// could trigger a coupling event en route to `dst`.
    fn flit_bound(&self, at: Coord, dst: Coord, via: Option<PillarId>, movable: u64) -> u64 {
        let lat = self.router_latency;
        if at.layer == dst.layer {
            // Delivery: at least one traversal per remaining mesh hop,
            // each costing a fresh `router_latency` dwell, then the
            // final local pop (`d == 0` means the pop itself is next).
            let d = u64::from(at.x.abs_diff(dst.x)) + u64::from(at.y.abs_diff(dst.y));
            movable + d * lat
        } else {
            // Bus grant: reach some pillar, dwell one cycle at its
            // interface, and wait out the bus's serialisation window.
            let via_pillar = |p: PillarId| {
                let (px, py) = self.layout.pillar_xy(p);
                let d = u64::from(at.x.abs_diff(px)) + u64::from(at.y.abs_diff(py));
                (movable + d * lat + 1).max(self.bus_ready_at[p.0 as usize])
            };
            match via {
                Some(p) => via_pillar(p),
                // Adaptive routing re-picks the nearest pillar per hop;
                // whichever it ends up using is covered by the min.
                None => (0..self.layout.num_pillars())
                    .map(|p| via_pillar(PillarId(p)))
                    .min()
                    .unwrap_or(movable),
            }
        }
    }

    /// Builds one [`Lane`] + [`WindowSink`] per shard and runs them all
    /// over `[from, to]` — inline for short windows, else on scoped
    /// worker threads claiming shards from an atomic cursor.
    fn run_lanes(&mut self, from: u64, to: u64, record: bool) {
        let nodes = self.nodes_per_shard;
        let lps = self.layers_per_shard;
        let workers = self.window_workers;
        let threaded = workers > 1 && (to - from + 1) >= self.window_spawn_min;
        let (mut fh, mut byc, mut sc) = (0u64, [0u64; 4], 0u64);
        {
            let Network {
                shards,
                routers,
                injectors,
                in_dirty,
                in_inj,
                traversals,
                layout,
                routes,
                mode,
                vcs,
                router_latency,
                bus_of_node,
                hop_bufs,
                ..
            } = self;
            let cells_iter = shards
                .iter_mut()
                .zip(hop_bufs.iter_mut())
                .zip(routers.chunks_mut(nodes))
                .zip(injectors.chunks_mut(nodes))
                .zip(in_dirty.chunks_mut(nodes))
                .zip(in_inj.chunks_mut(nodes))
                .zip(traversals.chunks_mut(nodes))
                .enumerate();
            let mut cells: Vec<(Lane<'_>, WindowSink, &mut Vec<_>)> = cells_iter
                .map(
                    |(s, ((((((st, hop_buf), routers), injectors), in_dirty), in_inj), trav))| {
                        let lane = Lane {
                            base: s * nodes,
                            base_layer: s as u8 * lps,
                            layers_per_shard: lps,
                            st,
                            routers,
                            injectors,
                            in_dirty,
                            in_inj,
                            traversals: trav,
                            layout,
                            routes,
                            mode: *mode,
                            vcs: *vcs,
                            router_latency: *router_latency,
                            bus_of_node,
                            flit_hops: 0,
                            flit_hops_by_class: [0; 4],
                            switch_contention: 0,
                        };
                        let sink = WindowSink {
                            hops: std::mem::take(hop_buf),
                            record,
                        };
                        (lane, sink, hop_buf)
                    },
                )
                .collect();
            if threaded {
                let cursor = AtomicUsize::new(0);
                let slots: Vec<Mutex<&mut (Lane<'_>, WindowSink, &mut Vec<_>)>> =
                    cells.iter_mut().map(Mutex::new).collect();
                std::thread::scope(|scope| {
                    for _ in 0..workers.min(slots.len()) {
                        scope.spawn(|| loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(slot) = slots.get(i) else { break };
                            let mut cell = slot.lock().expect("window lane poisoned");
                            let (lane, sink, _) = &mut **cell;
                            lane.run_window(from, to, sink);
                        });
                    }
                });
            } else {
                for (lane, sink, _) in &mut cells {
                    lane.run_window(from, to, sink);
                }
            }
            for (lane, sink, hop_buf) in cells {
                fh += lane.flit_hops;
                for (total, add) in byc.iter_mut().zip(lane.flit_hops_by_class) {
                    *total += add;
                }
                sc += lane.switch_contention;
                *hop_buf = sink.hops;
            }
        }
        self.fold_lane(fh, byc, sc);
    }

    /// Replays deferred `FlitHop` events in (cycle, shard) order —
    /// within a cycle the sequential engine processes routers in node
    /// order, i.e. shard order, and each shard's buffer is already in
    /// its own emission order, so a stable sort by cycle reconstructs
    /// the exact sequential event stream.
    fn replay_hops(&mut self) {
        if self.hop_bufs.iter().all(Vec::is_empty) {
            return;
        }
        let mut merged = std::mem::take(&mut self.hop_scratch);
        debug_assert!(merged.is_empty());
        for buf in &mut self.hop_bufs {
            merged.append(buf);
        }
        merged.sort_by_key(|&(cycle, _, _)| cycle);
        let mut current = u64::MAX;
        for (cycle, at, class) in merged.drain(..) {
            if cycle != current {
                self.obs.set_now(cycle);
                current = cycle;
            }
            self.obs
                .emit(Category::Hop, || EventData::FlitHop { at, class });
        }
        self.hop_scratch = merged;
    }
}
