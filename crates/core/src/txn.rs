//! The typed L2 transaction engine.
//!
//! Every memory request a core issues becomes one [`Txn`] tracked in the
//! [`TxnTable`] until its data (or store acknowledgement) returns. A
//! transaction's lifecycle is a small typed state machine ([`TxnState`])
//! instead of the god-object's old web of boolean flags
//! (`served`/`was_miss`/`outstanding`/`serve_cluster`):
//!
//! ```text
//! Searching{outstanding} ──probe hit──► Serving{cluster} ──data/ack──► done
//!        │                                    │
//!        │ all probes missed                  │ line evicted mid-service
//!        ▼                                    ▼
//!   (next step / retry)────exhausted────► MemoryWait ──fill + serve──► done
//! ```
//!
//! The decision logic — what a requester does when a search step comes
//! back empty-handed ([`after_search_exhausted`]), how miss replies are
//! accounted ([`Txn::note_probe_miss`]) — is pure: no network, no
//! clock, no side effects, so it is table-testable below. The
//! [`TxnTable`] also owns the MSHR-style miss-merge bookkeeping: all
//! concurrent misses on one line share a single memory fetch.

use nim_types::codec::{ByteReader, ByteWriter, Checkpoint, CodecError};
use nim_types::{AccessKind, Address, ClusterId, CpuId, Cycle, FxHashMap, LineAddr};

/// Transaction identifier (index into the system's live-transaction
/// table; dense, so per-transaction maps hash cheaply).
pub(crate) type TxnId = u32;

/// Where a transaction's cycles went: the fixed phase taxonomy of the
/// latency-attribution layer. Every cycle between issue and completion
/// lands in exactly one bucket (see `TxnTimeline`, the
/// crate-internal telescoping accumulator).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Horizontal NoC transfer: injection, routing, and per-hop
    /// traversal of the 2D mesh (plus pillar fan-out hops).
    NocHop = 0,
    /// Waiting for a dTDMA pillar bus grant (vertical serialization).
    PillarWait = 1,
    /// Serialization queueing at a tag array's issue slot, a bank's
    /// single access port, or a DRAM channel's bandwidth interval.
    ResourceQueue = 2,
    /// In service at the L2: tag lookup and bank access cycles.
    L2Service = 3,
    /// Waiting on a DRAM fetch (the shared per-line memory fill).
    MemWait = 4,
}

impl Phase {
    /// Every phase, in bucket order.
    pub const ALL: [Phase; 5] = [
        Phase::NocHop,
        Phase::PillarWait,
        Phase::ResourceQueue,
        Phase::L2Service,
        Phase::MemWait,
    ];

    /// Stable short name (used for metric keys and sampler columns).
    pub fn name(self) -> &'static str {
        match self {
            Phase::NocHop => "noc_hop",
            Phase::PillarWait => "pillar_wait",
            Phase::ResourceQueue => "resource_queue",
            Phase::L2Service => "l2_service",
            Phase::MemWait => "mem_wait",
        }
    }
}

/// Cycle-exact attribution of one transaction's lifetime to the
/// [`Phase`] buckets.
///
/// The timeline is a telescoping sum: `last` is the cycle up to which
/// every elapsed cycle has been attributed, and each engine touch closes
/// the segment `[last, now]` into one bucket and advances `last` to
/// `now`. Because segments never overlap and never leave gaps, the
/// buckets sum to `completed − issued` *by construction* — the standing
/// accounting invariant `finish_counters` debug-asserts on every
/// completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct TxnTimeline {
    /// Cycle up to which this transaction's time is attributed.
    last: u64,
    /// Attributed cycles, indexed by `Phase as usize`.
    buckets: [u64; Phase::ALL.len()],
}

impl TxnTimeline {
    /// A fresh timeline: nothing attributed yet, anchored at issue.
    pub(crate) fn new(issued: Cycle) -> Self {
        Self {
            last: issued.0,
            buckets: [0; Phase::ALL.len()],
        }
    }

    /// Attributes every cycle from the last attribution point up to
    /// `now` to `phase`. A touch at (or before) `last` is a no-op, so
    /// multiple same-cycle touches are safe.
    pub(crate) fn credit(&mut self, phase: Phase, now: Cycle) {
        if now.0 > self.last {
            self.buckets[phase as usize] += now.0 - self.last;
            self.last = now.0;
        }
    }

    /// Attributes the segment `[last, now]` across several phases: each
    /// `(phase, cycles)` part is taken in turn, clamped to what remains
    /// of the segment, and whatever is left goes to `rest`. Used where a
    /// delivery or timed event carries known sub-delays — a packet's
    /// pillar-grant wait inside its total network time, or a claimed
    /// resource's queue-before-service split. Clamping (rather than
    /// asserting) is deliberate: with several probes of one transaction
    /// in flight, an earlier-completing touch may have already closed
    /// part of the segment.
    pub(crate) fn credit_with(&mut self, rest: Phase, parts: &[(Phase, u64)], now: Cycle) {
        if now.0 > self.last {
            let mut seg = now.0 - self.last;
            for &(phase, cycles) in parts {
                let take = cycles.min(seg);
                self.buckets[phase as usize] += take;
                seg -= take;
            }
            self.buckets[rest as usize] += seg;
            self.last = now.0;
        }
    }

    /// Attributed cycles per phase, in [`Phase::ALL`] order.
    pub(crate) fn buckets(&self) -> [u64; Phase::ALL.len()] {
        self.buckets
    }

    /// Sum over all buckets.
    pub(crate) fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The cycle up to which this timeline is attributed.
    pub(crate) fn attributed_to(&self) -> u64 {
        self.last
    }

    /// Rebuilds a timeline from its serialized parts (snapshot resume).
    pub(crate) fn from_parts(last: u64, buckets: [u64; Phase::ALL.len()]) -> Self {
        Self { last, buckets }
    }
}

/// Search restarts allowed after racing migrations before giving up and
/// going to memory.
pub(crate) const MAX_SEARCH_RETRIES: u8 = 3;

/// Where one transaction stands in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TxnState {
    /// Probing tag arrays: `outstanding` replies of the current search
    /// step (see [`Txn::step`]) have not come back yet.
    Searching {
        /// Unanswered probes in the current search step.
        outstanding: u32,
    },
    /// A probe hit at `cluster` and the service path is running — the
    /// bank access and the data return (or store round trip) are in
    /// flight. Late probe replies are ignored.
    Serving {
        /// Cluster that served the hit — feeds the per-cluster hit
        /// matrix in the metrics registry.
        cluster: ClusterId,
    },
    /// The transaction missed everywhere (or lost the line while being
    /// served) and waits on the shared memory fetch for its line.
    MemoryWait,
}

/// One in-flight L2 transaction.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Txn {
    /// Requesting core.
    pub(crate) cpu: CpuId,
    /// Access kind (read / instruction fetch / write-through store).
    pub(crate) kind: AccessKind,
    /// Requested byte address.
    pub(crate) addr: Address,
    /// The address's cache line.
    pub(crate) line: LineAddr,
    /// Cycle the request left the core.
    pub(crate) issued: Cycle,
    /// Last issued search step (1 or 2; stays 1 for the oracle, which
    /// never probes). Hits are attributed to this step.
    pub(crate) step: u8,
    /// Searches re-issued after racing a migration.
    pub(crate) retries: u8,
    /// Lifecycle state.
    pub(crate) state: TxnState,
    /// Per-phase latency attribution (always on: pure inline
    /// arithmetic, no allocation — the obs handle only gates whether
    /// spans are *emitted*, never whether cycles are attributed).
    pub(crate) timeline: TxnTimeline,
}

/// What a probe-miss reply means to its transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum MissReply {
    /// The transaction is already being served (or gone to memory); the
    /// late reply is dropped.
    Ignored,
    /// More probes of the current step are still unanswered.
    StillWaiting,
    /// That was the last outstanding probe — the step found nothing and
    /// the requester must decide what to do next
    /// ([`after_search_exhausted`]).
    Exhausted,
}

impl Txn {
    /// Creates a fresh transaction as the core issued it.
    pub(crate) fn new(
        cpu: CpuId,
        kind: AccessKind,
        addr: Address,
        line: LineAddr,
        issued: Cycle,
    ) -> Self {
        Self {
            cpu,
            kind,
            addr,
            line,
            issued,
            step: 1,
            retries: 0,
            state: TxnState::Searching { outstanding: 0 },
            timeline: TxnTimeline::new(issued),
        }
    }

    /// Enters search step `step` with `outstanding` probes in flight.
    pub(crate) fn begin_step(&mut self, step: u8, outstanding: u32) {
        self.step = step;
        self.state = TxnState::Searching { outstanding };
    }

    /// A probe hit: the service path is running from `cluster`.
    pub(crate) fn serve_from(&mut self, cluster: ClusterId) {
        self.state = TxnState::Serving { cluster };
    }

    /// The transaction goes (or is going) to memory.
    pub(crate) fn begin_memory_wait(&mut self) {
        self.state = TxnState::MemoryWait;
    }

    /// Whether a probe hit may still claim this transaction.
    pub(crate) fn is_searching(&self) -> bool {
        matches!(self.state, TxnState::Searching { .. })
    }

    /// Whether the transaction went to memory (counts as an L2 miss).
    pub(crate) fn was_miss(&self) -> bool {
        matches!(self.state, TxnState::MemoryWait)
    }

    /// Accounts one probe-miss reply against the current search step.
    pub(crate) fn note_probe_miss(&mut self) -> MissReply {
        match &mut self.state {
            TxnState::Searching { outstanding } => {
                debug_assert!(*outstanding > 0);
                *outstanding -= 1;
                if *outstanding > 0 {
                    MissReply::StillWaiting
                } else {
                    MissReply::Exhausted
                }
            }
            _ => MissReply::Ignored,
        }
    }
}

/// What a requester does after a whole search step missed everywhere.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SearchOutcome {
    /// Widen the search: issue step 2 (paper §4.2.1).
    NextStep,
    /// The line is resident but migrated between our probes (both the
    /// old and the new tag array answered "miss"); restart the search
    /// instead of falsely going to memory.
    Retry,
    /// Missed everywhere: fetch the line from memory.
    Memory,
}

/// Pure decision for a search step that came back empty-handed.
///
/// `step2_empty` — the CPU's plan has no step-2 clusters (its vicinity
/// already covers the chip). `resident` — the L2 still maps the line
/// somewhere (the migration race of §4.2.3's lazy movement).
pub(crate) fn after_search_exhausted(
    step: u8,
    step2_empty: bool,
    resident: bool,
    retries: u8,
) -> SearchOutcome {
    if step == 1 && !step2_empty {
        SearchOutcome::NextStep
    } else if resident && retries < MAX_SEARCH_RETRIES {
        SearchOutcome::Retry
    } else {
        SearchOutcome::Memory
    }
}

/// The live-transaction table plus the MSHR-style miss ledger.
///
/// Keyed by the simulation's own dense ids, so the map (like every
/// other per-transaction map here) runs on [`FxHashMap`] — SipHash
/// dominated the lookup cost on this path.
#[derive(Debug, Default)]
pub(crate) struct TxnTable {
    txns: FxHashMap<TxnId, Txn>,
    next: TxnId,
    /// Misses waiting on each line's single in-flight memory fetch.
    pending_fills: FxHashMap<LineAddr, Vec<TxnId>>,
}

impl TxnTable {
    /// Admits a new transaction and returns its id.
    pub(crate) fn allocate(&mut self, txn: Txn) -> TxnId {
        let id = self.next;
        self.next += 1;
        self.txns.insert(id, txn);
        id
    }

    /// The live transaction `id`, if it has not completed.
    pub(crate) fn get(&self, id: TxnId) -> Option<&Txn> {
        self.txns.get(&id)
    }

    pub(crate) fn get_mut(&mut self, id: TxnId) -> Option<&mut Txn> {
        self.txns.get_mut(&id)
    }

    /// Completes (removes) transaction `id`.
    pub(crate) fn remove(&mut self, id: TxnId) -> Option<Txn> {
        self.txns.remove(&id)
    }

    /// No transactions in flight (the quiescence check).
    pub(crate) fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Joins `id` to `line`'s miss ledger; returns `true` if this is the
    /// first waiter, i.e. the caller must issue the actual memory fetch
    /// (concurrent misses on the same line merge MSHR-style).
    pub(crate) fn enqueue_fill(&mut self, line: LineAddr, id: TxnId) -> bool {
        match self.pending_fills.get_mut(&line) {
            Some(waiters) => {
                waiters.push(id);
                false
            }
            None => {
                self.pending_fills.insert(line, vec![id]);
                true
            }
        }
    }

    /// Claims every transaction waiting on `line`'s fill.
    pub(crate) fn take_fill_waiters(&mut self, line: LineAddr) -> Vec<TxnId> {
        self.pending_fills.remove(&line).unwrap_or_default()
    }
}

fn save_txn(w: &mut ByteWriter, t: &Txn) {
    w.u16(t.cpu.0);
    w.u8(match t.kind {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
        AccessKind::IFetch => 2,
    });
    w.u64(t.addr.0);
    w.u64(t.line.0);
    w.u64(t.issued.0);
    w.u8(t.step);
    w.u8(t.retries);
    match t.state {
        TxnState::Searching { outstanding } => {
            w.u8(0);
            w.u32(outstanding);
        }
        TxnState::Serving { cluster } => {
            w.u8(1);
            w.u16(cluster.0);
        }
        TxnState::MemoryWait => w.u8(2),
    }
    w.u64(t.timeline.attributed_to());
    for b in t.timeline.buckets() {
        w.u64(b);
    }
}

fn restore_txn(r: &mut ByteReader<'_>) -> Result<Txn, CodecError> {
    let cpu = CpuId(r.u16()?);
    let kind = match r.u8()? {
        0 => AccessKind::Read,
        1 => AccessKind::Write,
        2 => AccessKind::IFetch,
        _ => return Err(CodecError::Corrupt("bad access kind tag")),
    };
    let addr = Address(r.u64()?);
    let line = LineAddr(r.u64()?);
    let issued = Cycle(r.u64()?);
    let step = r.u8()?;
    let retries = r.u8()?;
    let state = match r.u8()? {
        0 => TxnState::Searching {
            outstanding: r.u32()?,
        },
        1 => TxnState::Serving {
            cluster: ClusterId(r.u16()?),
        },
        2 => TxnState::MemoryWait,
        _ => return Err(CodecError::Corrupt("bad txn state tag")),
    };
    let last = r.u64()?;
    let mut buckets = [0u64; Phase::ALL.len()];
    for b in &mut buckets {
        *b = r.u64()?;
    }
    Ok(Txn {
        cpu,
        kind,
        addr,
        line,
        issued,
        step,
        retries,
        state,
        timeline: TxnTimeline::from_parts(last, buckets),
    })
}

impl Checkpoint for TxnTable {
    fn save(&self, w: &mut ByteWriter) {
        // Hash maps iterate in arbitrary order; key-sort for a canonical
        // encoding (waiter vectors keep their arrival order verbatim —
        // fill completion walks them in order).
        let mut ids: Vec<TxnId> = self.txns.keys().copied().collect();
        ids.sort_unstable();
        w.u32(ids.len() as u32);
        for id in ids {
            w.u32(id);
            save_txn(w, &self.txns[&id]);
        }
        w.u32(self.next);
        let mut lines: Vec<LineAddr> = self.pending_fills.keys().copied().collect();
        lines.sort_unstable_by_key(|l| l.0);
        w.u32(lines.len() as u32);
        for line in lines {
            w.u64(line.0);
            let waiters = &self.pending_fills[&line];
            w.u32(waiters.len() as u32);
            for &id in waiters {
                w.u32(id);
            }
        }
    }

    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.txns.clear();
        for _ in 0..r.u32()? {
            let id = r.u32()?;
            self.txns.insert(id, restore_txn(r)?);
        }
        self.next = r.u32()?;
        self.pending_fills.clear();
        for _ in 0..r.u32()? {
            let line = LineAddr(r.u64()?);
            let mut waiters = Vec::new();
            for _ in 0..r.u32()? {
                waiters.push(r.u32()?);
            }
            self.pending_fills.insert(line, waiters);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn() -> Txn {
        Txn::new(
            CpuId::from_index(0),
            AccessKind::Read,
            Address(0x1000),
            LineAddr(0x1000 / 64),
            Cycle(5),
        )
    }

    /// The search continuation decision, as a table: (step, step2_empty,
    /// resident, retries) → outcome.
    #[test]
    fn search_exhaustion_decision_table() {
        use SearchOutcome::*;
        let table = [
            // Step 1 missing widens to step 2 whenever a step 2 exists,
            // regardless of residency or retry budget.
            ((1, false, false, 0), NextStep),
            ((1, false, true, 0), NextStep),
            ((1, false, true, 3), NextStep),
            // A plan without step 2: residency decides.
            ((1, true, false, 0), Memory),
            ((1, true, true, 0), Retry),
            // Step 2 missing retries only while the line is resident and
            // the budget lasts.
            ((2, false, true, 0), Retry),
            ((2, false, true, 2), Retry),
            ((2, false, true, 3), Memory),
            ((2, false, false, 0), Memory),
            ((2, true, false, 1), Memory),
        ];
        for ((step, step2_empty, resident, retries), want) in table {
            assert_eq!(
                after_search_exhausted(step, step2_empty, resident, retries),
                want,
                "step={step} step2_empty={step2_empty} resident={resident} retries={retries}"
            );
        }
    }

    #[test]
    fn probe_miss_accounting_walks_the_states() {
        let mut t = txn();
        t.begin_step(1, 3);
        assert!(t.is_searching());
        assert_eq!(t.note_probe_miss(), MissReply::StillWaiting);
        assert_eq!(t.note_probe_miss(), MissReply::StillWaiting);
        assert_eq!(t.note_probe_miss(), MissReply::Exhausted);
        // Once served, late replies are ignored and state sticks.
        t.begin_step(2, 2);
        t.serve_from(ClusterId(7));
        assert!(!t.is_searching());
        assert_eq!(t.note_probe_miss(), MissReply::Ignored);
        assert_eq!(
            t.state,
            TxnState::Serving {
                cluster: ClusterId(7)
            }
        );
        // Losing the line mid-service turns the hit into a miss.
        t.begin_memory_wait();
        assert!(t.was_miss());
        assert_eq!(t.note_probe_miss(), MissReply::Ignored);
    }

    #[test]
    fn timeline_buckets_telescope_to_the_elapsed_total() {
        let mut tl = TxnTimeline::new(Cycle(100));
        tl.credit(Phase::NocHop, Cycle(110));
        // Same-cycle (and stale) touches attribute nothing.
        tl.credit(Phase::MemWait, Cycle(110));
        tl.credit(Phase::MemWait, Cycle(90));
        // A split: 15-cycle segment, 6 cycles of it known queueing.
        tl.credit_with(Phase::NocHop, &[(Phase::ResourceQueue, 6)], Cycle(125));
        tl.credit(Phase::L2Service, Cycle(130));
        let b = tl.buckets();
        assert_eq!(b[Phase::NocHop as usize], 10 + 9);
        assert_eq!(b[Phase::ResourceQueue as usize], 6);
        assert_eq!(b[Phase::L2Service as usize], 5);
        assert_eq!(b[Phase::MemWait as usize], 0);
        assert_eq!(tl.total(), 30);
        assert_eq!(tl.attributed_to(), 130);
    }

    #[test]
    fn timeline_split_clamps_parts_to_the_segment() {
        let mut tl = TxnTimeline::new(Cycle(0));
        // Claimed waits (7 + 2) exceed the elapsed segment (4): parts
        // clamp in order, nothing goes negative, the total still
        // telescopes.
        tl.credit_with(
            Phase::L2Service,
            &[(Phase::PillarWait, 7), (Phase::NocHop, 2)],
            Cycle(4),
        );
        assert_eq!(tl.buckets()[Phase::PillarWait as usize], 4);
        assert_eq!(tl.buckets()[Phase::NocHop as usize], 0);
        assert_eq!(tl.buckets()[Phase::L2Service as usize], 0);
        assert_eq!(tl.total(), 4);
    }

    #[test]
    fn txn_table_checkpoint_round_trips() {
        let mut table = TxnTable::default();
        let mut searching = txn();
        searching.begin_step(2, 3);
        searching.timeline.credit(Phase::NocHop, Cycle(12));
        let a = table.allocate(searching);
        let mut serving = txn();
        serving.serve_from(ClusterId(5));
        let b = table.allocate(serving);
        let mut missing = txn();
        missing.begin_memory_wait();
        let c = table.allocate(missing);
        table.enqueue_fill(LineAddr(9), c);
        table.enqueue_fill(LineAddr(9), a);

        let mut w = ByteWriter::new();
        table.save(&mut w);
        let bytes = w.into_bytes();
        let mut restored = TxnTable::default();
        let mut r = ByteReader::new(&bytes);
        restored.restore(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(restored.next, table.next);
        for id in [a, b, c] {
            let (x, y) = (table.get(id).unwrap(), restored.get(id).unwrap());
            assert_eq!(x.cpu, y.cpu);
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.addr, y.addr);
            assert_eq!(x.issued, y.issued);
            assert_eq!((x.step, x.retries), (y.step, y.retries));
            assert_eq!(x.state, y.state);
            assert_eq!(x.timeline, y.timeline);
        }
        // Waiter order survives (fill completion walks it in order).
        assert_eq!(restored.take_fill_waiters(LineAddr(9)), vec![c, a]);

        let mut r = ByteReader::new(&bytes[..bytes.len() - 2]);
        assert!(TxnTable::default().restore(&mut r).is_err());
    }

    #[test]
    fn txn_table_merges_concurrent_misses() {
        let mut table = TxnTable::default();
        let a = table.allocate(txn());
        let b = table.allocate(txn());
        assert_ne!(a, b);
        let line = LineAddr(9);
        assert!(table.enqueue_fill(line, a), "first waiter issues the fetch");
        assert!(!table.enqueue_fill(line, b), "second waiter merges");
        assert_eq!(table.take_fill_waiters(line), vec![a, b]);
        assert!(table.take_fill_waiters(line).is_empty());
        assert!(table.remove(a).is_some());
        assert!(table.remove(b).is_some());
        assert!(table.is_empty());
    }
}
