//! Property-based tests for the network: arbitrary traffic always drains,
//! every packet is delivered exactly once at its destination, and latency
//! is bounded below by the zero-load minimum.

use nim_noc::{Network, SendRequest, TrafficClass, VerticalMode};
use nim_topology::ChipLayout;
use nim_types::{Coord, SystemConfig};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Traffic {
    src: Coord,
    dst: Coord,
    flits: u32,
    gap: u8,
}

fn arb_traffic(w: u8, h: u8, layers: u8) -> impl Strategy<Value = Traffic> {
    (
        0..w,
        0..h,
        0..layers,
        0..w,
        0..h,
        0..layers,
        1u32..=4,
        0u8..4,
    )
        .prop_map(|(sx, sy, sl, dx, dy, dl, flits, gap)| Traffic {
            src: Coord::new(sx, sy, sl),
            dst: Coord::new(dx, dy, dl),
            flits,
            gap,
        })
}

fn run_traffic(mode: VerticalMode, traffic: Vec<Traffic>) -> Result<(), TestCaseError> {
    let cfg = SystemConfig::default();
    let layout = ChipLayout::new(&cfg).expect("layout");
    let mut net = Network::new(&layout, &cfg.network, mode);
    let mut expected = std::collections::HashMap::new();
    for (i, t) in traffic.iter().enumerate() {
        net.send(SendRequest {
            src: t.src,
            dst: t.dst,
            via: layout.nearest_pillar(t.src),
            class: TrafficClass::Data,
            flits: t.flits,
            token: i as u64,
        });
        *expected.entry((t.dst, i as u64)).or_insert(0u32) += 1;
        for _ in 0..t.gap {
            net.tick();
        }
    }
    prop_assert!(
        net.run_until_idle(500_000).is_some(),
        "network deadlocked or livelocked"
    );
    let mut seen = std::collections::HashMap::new();
    let mut min_latency_ok = true;
    for d in net.drain_delivered() {
        *seen.entry((d.dst, d.token)).or_insert(0u32) += 1;
        let zero_load = match mode {
            VerticalMode::Mesh3d => u64::from(d.src.manhattan_3d(d.dst)),
            VerticalMode::Pillars => u64::from(
                layout.hops(d.src, d.dst, None).min(
                    layout
                        .nearest_pillar(d.src)
                        .map_or(u32::MAX, |p| layout.hops(d.src, d.dst, Some(p))),
                ),
            ),
        };
        if d.latency() < zero_load {
            min_latency_ok = false;
        }
    }
    prop_assert!(min_latency_ok, "a packet beat the zero-load bound");
    prop_assert_eq!(seen, expected, "every packet delivered exactly once");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pillar_network_delivers_everything_exactly_once(
        traffic in proptest::collection::vec(arb_traffic(16, 8, 2), 1..150),
    ) {
        run_traffic(VerticalMode::Pillars, traffic)?;
    }

    #[test]
    fn mesh3d_network_delivers_everything_exactly_once(
        traffic in proptest::collection::vec(arb_traffic(16, 8, 2), 1..150),
    ) {
        run_traffic(VerticalMode::Mesh3d, traffic)?;
    }

    #[test]
    fn stats_conserve_packets(
        traffic in proptest::collection::vec(arb_traffic(16, 8, 2), 1..80),
    ) {
        let cfg = SystemConfig::default();
        let layout = ChipLayout::new(&cfg).expect("layout");
        let mut net = Network::new(&layout, &cfg.network, VerticalMode::Pillars);
        let n = traffic.len() as u64;
        for (i, t) in traffic.iter().enumerate() {
            net.send(SendRequest {
                src: t.src,
                dst: t.dst,
                via: layout.nearest_pillar(t.src),
                class: TrafficClass::Control,
                flits: t.flits,
                token: i as u64,
            });
        }
        prop_assert!(net.run_until_idle(500_000).is_some());
        prop_assert_eq!(net.stats().packets_sent, n);
        prop_assert_eq!(net.stats().packets_delivered, n);
        prop_assert!(net.is_idle());
    }
}
