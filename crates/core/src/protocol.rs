//! The L2 protocol engine.
//!
//! [`Engine`] owns everything the paper's distributed L2 protocol needs
//! — the NUCA L2 and its tag state, the directory, the cores' L1 side,
//! the live [`TxnTable`](crate::txn::TxnTable) — and implements every
//! protocol transition (two-step CMP-DNUCA search, vertical pillar
//! broadcasts, bank reads/writes, the memory path, migration,
//! replication, coherence invalidations) as methods generic over the
//! [`Fabric`] seam. The engine never touches the network or the event
//! heap directly, which is what makes each transition unit-testable
//! against [`TestFabric`](crate::fabric::TestFabric) — see the sibling
//! `tests` module.
//!
//! Scheme-specific choices live behind
//! [`ProtocolPolicy`](crate::policy::ProtocolPolicy), bound once at
//! build time.

use nim_cache::{NucaL2, SearchPlan};
use nim_coherence::{DirAccess, Directory};
use nim_cpu::{InOrderCore, MemRequest};
use nim_obs::{Category, EventData};
use nim_topology::{ChipLayout, CpuSeat};
use nim_types::{AccessKind, ClusterId, Coord, CpuId, Cycle, FxHashMap, LineAddr, PillarId};
use nim_workload::{cpu_regions, shared_region, BenchmarkProfile};

use crate::fabric::{ClaimedDelay, Delivered, Fabric, TrafficClass};
use crate::policy::{MemoryRoute, ProtocolPolicy};
use crate::report::Counters;
use crate::token::{TimedEvent, Token};
use crate::txn::{after_search_exhausted, MissReply, Phase, SearchOutcome, Txn, TxnId, TxnTable};

#[cfg(test)]
#[path = "protocol_tests.rs"]
mod tests;

/// The protocol engine: all chip state the L2 protocol reads and
/// mutates, plus every transition handler. The run loop in
/// [`System`](crate::System) feeds it core requests, delivered packets,
/// and due timed events; everything the engine does to the outside
/// world goes through its [`Fabric`] parameter.
#[derive(Debug)]
pub(crate) struct Engine {
    /// The chip geometry (shared read-only by every layer).
    pub(crate) layout: ChipLayout,
    /// Where the CPUs ended up.
    pub(crate) seats: Vec<CpuSeat>,
    /// Per-CPU two-step search plans.
    pub(crate) plans: Vec<SearchPlan>,
    /// Bitmask of CPUs seated in each cluster.
    pub(crate) cluster_cpus: Vec<u64>,
    /// CPU seated at each coordinate (L1 invalidation routing).
    pub(crate) cpu_at: FxHashMap<Coord, CpuId>,
    /// The NUCA L2 (tags, banks, migration and replica state).
    pub(crate) l2: NucaL2,
    /// The write-through MSI directory.
    pub(crate) dir: Directory,
    /// The cores and their L1s.
    pub(crate) cores: Vec<InOrderCore>,
    /// Live transactions + the MSHR miss ledger.
    pub(crate) txns: TxnTable,
    /// CPU that last accessed each line (drives the migration trigger).
    pub(crate) last_accessor: FxHashMap<LineAddr, CpuId>,
    /// Memory-controller positions (edges of layer 0).
    pub(crate) mc_coords: Vec<Coord>,
    /// Protocol counters (the report's raw material).
    pub(crate) counters: Counters,
    /// The scheme's protocol policy, bound at build time.
    pub(crate) policy: Box<dyn ProtocolPolicy>,
    /// Cache-line size in bytes.
    pub(crate) line_bytes: u64,
    /// Data-packet length in flits.
    pub(crate) data_flits: u32,
}

impl Engine {
    // ----- plumbing -------------------------------------------------------

    fn seat(&self, cpu: CpuId) -> &CpuSeat {
        &self.seats[cpu.index()]
    }

    fn via(&self, cpu: CpuId) -> Option<PillarId> {
        self.seats[cpu.index()].pillar
    }

    fn center(&self, cl: ClusterId) -> Coord {
        self.layout.cluster_center(cl)
    }

    fn bank_coord(&self, cluster: ClusterId, line: LineAddr) -> Coord {
        let map = self.l2.map();
        let bank = map.global_bank(cluster, map.bank_in_cluster(line));
        self.layout.coord_of_bank(bank)
    }

    /// Claims the bank at `at` through the fabric (node-indexing it).
    fn bank_delay(&self, f: &mut impl Fabric, at: Coord, now: Cycle, write: bool) -> ClaimedDelay {
        f.bank_delay(self.layout.node_index(at), now, write)
    }

    // ----- transaction lifecycle ------------------------------------------

    /// A core issued a memory request: open a transaction and start the
    /// policy's lookup.
    pub(crate) fn handle_request(&mut self, f: &mut impl Fabric, req: MemRequest, now: Cycle) {
        let line = req.addr.line(self.line_bytes);
        let id = self
            .txns
            .allocate(Txn::new(req.cpu, req.kind, req.addr, line, now));
        self.emit_txn_begin(f, id, &req);
        if self.policy.oracle_search() {
            self.perfect_lookup(f, id, now);
        } else {
            self.issue_search_step(f, id, 1, now);
        }
    }

    /// CMP-DNUCA's perfect-search oracle: the requester knows the line's
    /// location without probing.
    fn perfect_lookup(&mut self, f: &mut impl Fabric, id: TxnId, now: Cycle) {
        let t = *self.txns.get(id).expect("live txn");
        self.counters.tag_accesses += 1;
        match self.l2.locate(t.line) {
            Some(cl) => {
                let seat = *self.seat(t.cpu);
                let bank = self.bank_coord(cl, t.line);
                self.txns.get_mut(id).expect("live txn").serve_from(cl);
                match t.kind {
                    AccessKind::Read | AccessKind::IFetch => {
                        f.send(
                            seat.coord,
                            bank,
                            TrafficClass::Control,
                            1,
                            Token::BankFetch { txn: id },
                            seat.pillar,
                        );
                    }
                    AccessKind::Write => {
                        let flits = self.data_flits;
                        f.send(
                            seat.coord,
                            bank,
                            TrafficClass::Data,
                            flits,
                            Token::WriteData { txn: id },
                            seat.pillar,
                        );
                    }
                }
            }
            None => self.go_to_memory(f, id, now),
        }
    }

    /// Issues one step of the two-step search (paper §4.2.1).
    ///
    /// Same-layer clusters are probed with individual request packets.
    /// Remote layers receive a single tag *broadcast* riding the CPU's
    /// pillar — one packet per layer probes that layer's whole disc and
    /// returns at most one (aggregated) miss reply, exactly the
    /// bandwidth advantage the paper attributes to the pillar broadcast.
    fn issue_search_step(&mut self, f: &mut impl Fabric, id: TxnId, step: u8, now: Cycle) {
        let t = *self.txns.get(id).expect("live txn");
        let plan = &self.plans[t.cpu.index()];
        let clusters: Vec<ClusterId> = if step == 1 {
            plan.step1.clone()
        } else {
            plan.step2.clone()
        };
        let local = plan.local;
        let seat = *self.seat(t.cpu);
        let my_layer = seat.coord.layer;
        // Step 1 reaches remote layers with one broadcast per layer (the
        // tag rides the pillar once and fans out to the cylinder's tag
        // arrays); step 2 is a plain multicast — every remaining cluster,
        // remote ones included, gets its own request packet (paper
        // §4.2.1), so step-2 searches load the pillars individually.
        let broadcast_remote = step == 1;
        let direct: Vec<ClusterId> = if broadcast_remote {
            clusters
                .iter()
                .copied()
                .filter(|cl| self.layout.cluster_layer(*cl) == my_layer)
                .collect()
        } else {
            clusters.clone()
        };
        let mut remote_layers: Vec<u8> = if broadcast_remote {
            clusters
                .iter()
                .map(|cl| self.layout.cluster_layer(*cl))
                .filter(|l| *l != my_layer)
                .collect()
        } else {
            Vec::new()
        };
        remote_layers.sort_unstable();
        remote_layers.dedup();
        let remote_broadcast_targets = clusters.len() - direct.len();
        f.obs().emit(Category::Search, || EventData::SearchStep {
            txn: u64::from(id),
            step,
            targets: clusters.len() as u32,
        });
        // Every probed tag array answers individually.
        self.txns
            .get_mut(id)
            .expect("live txn")
            .begin_step(step, (direct.len() + remote_broadcast_targets) as u32);
        self.counters.tag_accesses += direct.len() as u64;
        for cl in direct {
            if cl == local {
                // The local tag array is directly connected (paper §4.1).
                let delay = f.tag_delay(cl, now);
                f.schedule(
                    now,
                    delay.total(),
                    TimedEvent::ProbeResolved {
                        txn: id,
                        cluster: cl,
                        queue: delay.queue,
                    },
                );
            } else {
                f.send(
                    seat.coord,
                    self.layout.cluster_center(cl),
                    TrafficClass::Control,
                    1,
                    Token::Probe {
                        txn: id,
                        cluster: cl,
                    },
                    seat.pillar,
                );
            }
        }
        for layer in remote_layers {
            let pillar = seat.pillar.expect("remote layers imply a pillar");
            f.send(
                seat.coord,
                self.layout.pillar_coord(pillar, layer),
                TrafficClass::Control,
                1,
                Token::VerticalProbe {
                    txn: id,
                    layer,
                    step,
                },
                seat.pillar,
            );
        }
    }

    /// A tag array finished its lookup for one probe.
    fn resolve_probe(&mut self, f: &mut impl Fabric, id: TxnId, cluster: ClusterId, now: Cycle) {
        let Some(t) = self.txns.get(id).copied() else {
            return;
        };
        f.obs().emit(Category::Search, || EventData::Probe {
            txn: u64::from(id),
            cluster: u32::from(cluster.0),
            step: t.step,
        });
        let visible = self.l2.locate(t.line);
        let hit = self.l2.has_copy_at(t.line, cluster);
        let seat = *self.seat(t.cpu);
        let local = self.plans[t.cpu.index()].local;
        let origin = if cluster == local {
            seat.coord
        } else {
            self.center(cluster)
        };
        if hit && t.is_searching() {
            // Serve from the probed cluster when its bank really holds a
            // copy (primary or replica); a probe that matched only an
            // in-flight migration entry serves from the current location.
            let serving =
                if visible == Some(cluster) || self.l2.replicas_of(t.line).contains(&cluster) {
                    cluster
                } else {
                    visible.expect("a hit implies residency")
                };
            self.serve_hit(f, id, origin, serving, now);
        } else if t.is_searching() {
            // Miss: tell the requester (local tag arrays answer directly).
            if origin == seat.coord {
                self.probe_missed(f, id, now);
            } else {
                f.send(
                    origin,
                    seat.coord,
                    TrafficClass::Control,
                    1,
                    Token::ProbeMiss { txn: id },
                    seat.pillar,
                );
            }
        }
        // Probes resolving after the transaction was served are dropped:
        // their outcome no longer matters.
    }

    /// A tag array found the line: forward the request toward the data
    /// (reads) or tell the writer where to ship its store (writes).
    fn serve_hit(
        &mut self,
        f: &mut impl Fabric,
        id: TxnId,
        origin: Coord,
        serving: ClusterId,
        now: Cycle,
    ) {
        let t = *self.txns.get(id).expect("live txn");
        f.obs().emit(Category::Search, || EventData::ProbeHit {
            txn: u64::from(id),
            cluster: u32::from(serving.0),
        });
        self.txns.get_mut(id).expect("live txn").serve_from(serving);
        let seat = *self.seat(t.cpu);
        match t.kind {
            AccessKind::Read | AccessKind::IFetch => {
                // The tag array forwards the request to the bank; the
                // data is routed straight to the requester (§4.2.1).
                let bank = self.bank_coord(serving, t.line);
                f.send(
                    origin,
                    bank,
                    TrafficClass::Control,
                    1,
                    Token::BankFetch { txn: id },
                    seat.pillar,
                );
            }
            AccessKind::Write => {
                // The writer must learn the location to ship its data.
                if origin == seat.coord {
                    self.write_data_to(f, id, now);
                } else {
                    f.send(
                        origin,
                        seat.coord,
                        TrafficClass::Control,
                        1,
                        Token::FoundForWrite {
                            txn: id,
                            cluster: serving,
                        },
                        seat.pillar,
                    );
                }
            }
        }
    }

    /// A pillar tag broadcast arrived at one remote layer: fan the probe
    /// out to every target tag array on that layer, charging each the
    /// mesh distance from the pillar node.
    fn vertical_probe_arrived(
        &mut self,
        f: &mut impl Fabric,
        id: TxnId,
        at: Coord,
        step: u8,
        now: Cycle,
    ) {
        let Some(t) = self.txns.get(id).copied() else {
            // The transaction completed already; nothing waits for this
            // broadcast (no pending entry was created yet).
            return;
        };
        let plan = &self.plans[t.cpu.index()];
        let set = if step == 1 { &plan.step1 } else { &plan.step2 };
        let layer = at.layer;
        let clusters: Vec<ClusterId> = set
            .iter()
            .copied()
            .filter(|cl| self.layout.cluster_layer(*cl) == layer)
            .collect();
        debug_assert!(!clusters.is_empty(), "broadcast to a layer with no targets");
        self.counters.tag_accesses += clusters.len() as u64;
        for cl in clusters {
            let fanout = u64::from(at.manhattan_2d(self.center(cl)));
            let delay = f.tag_delay(cl, now);
            f.schedule(
                now,
                delay.total() + fanout,
                TimedEvent::VerticalClusterResolved {
                    txn: id,
                    cluster: cl,
                    layer,
                    queue: delay.queue,
                    fanout,
                },
            );
        }
    }

    /// One remote tag array resolved its share of a pillar broadcast:
    /// serve a hit, or answer with its own miss reply — every reply
    /// individually rides the pillar back, which is what loads the bus
    /// when few pillars serve many CPUs (Fig. 17).
    fn vertical_cluster_resolved(
        &mut self,
        f: &mut impl Fabric,
        id: TxnId,
        cluster: ClusterId,
        _layer: u8,
        now: Cycle,
    ) {
        let Some(t) = self.txns.get(id).copied() else {
            return;
        };
        if !t.is_searching() {
            return;
        }
        let visible = self.l2.locate(t.line);
        if self.l2.has_copy_at(t.line, cluster) {
            let serving =
                if visible == Some(cluster) || self.l2.replicas_of(t.line).contains(&cluster) {
                    cluster
                } else {
                    visible.expect("a hit implies residency")
                };
            self.serve_hit(f, id, self.center(cluster), serving, now);
            return;
        }
        let seat = *self.seat(t.cpu);
        f.send(
            self.center(cluster),
            seat.coord,
            TrafficClass::Control,
            1,
            Token::ProbeMiss { txn: id },
            seat.pillar,
        );
    }

    /// A miss answer reached the requester.
    fn probe_missed(&mut self, f: &mut impl Fabric, id: TxnId, now: Cycle) {
        let Some(t) = self.txns.get_mut(id) else {
            return;
        };
        match t.note_probe_miss() {
            MissReply::Ignored | MissReply::StillWaiting => return,
            MissReply::Exhausted => {}
        }
        let t = *t;
        f.obs().emit(Category::Search, || EventData::ProbeMiss {
            txn: u64::from(id),
            step: t.step,
        });
        let step2_empty = self.plans[t.cpu.index()].step2.is_empty();
        let resident = self.l2.locate(t.line).is_some();
        match after_search_exhausted(t.step, step2_empty, resident, t.retries) {
            SearchOutcome::NextStep => self.issue_search_step(f, id, 2, now),
            SearchOutcome::Retry => {
                self.counters.search_retries += 1;
                f.obs().emit(Category::Search, || EventData::SearchRetry {
                    txn: u64::from(id),
                    attempt: u32::from(t.retries) + 1,
                });
                self.txns.get_mut(id).expect("live txn").retries += 1;
                self.issue_search_step(f, id, 1, now);
            }
            SearchOutcome::Memory => self.go_to_memory(f, id, now),
        }
    }

    /// The transaction missed everywhere: fetch the line from memory
    /// (merging concurrent misses on the same line, MSHR-style). Under
    /// [`MemoryRoute::EdgeControllers`] the request travels over the
    /// network to the controller nearest the line's home bank, whose
    /// channel bandwidth limits how fast back-to-back misses drain;
    /// under [`MemoryRoute::Flat`] the fill simply appears after the
    /// paper's fixed latency.
    fn go_to_memory(&mut self, f: &mut impl Fabric, id: TxnId, now: Cycle) {
        let t = self.txns.get_mut(id).expect("live txn");
        t.begin_memory_wait();
        let line = t.line;
        let cpu = t.cpu;
        if !self.txns.enqueue_fill(line, id) {
            return; // an earlier miss on this line already fetches it
        }
        f.obs()
            .emit(Category::Memory, || EventData::MemRequest { line: line.0 });
        match self.policy.memory_route() {
            MemoryRoute::EdgeControllers => {
                let seat = *self.seat(cpu);
                let mc = self.nearest_mc(self.bank_coord(self.l2.home_cluster(line), line));
                f.send(
                    seat.coord,
                    self.mc_coords[mc],
                    TrafficClass::Control,
                    1,
                    Token::MemRequest { line },
                    seat.pillar,
                );
            }
            MemoryRoute::Flat { latency } => {
                f.schedule(now, latency, TimedEvent::MemoryFetched { line });
            }
        }
    }

    /// Index of the memory controller nearest to `c` (2D distance; the
    /// controllers all sit on layer 0).
    fn nearest_mc(&self, c: Coord) -> usize {
        self.mc_coords
            .iter()
            .enumerate()
            .min_by_key(|(_, mc)| c.manhattan_2d(**mc))
            .map(|(i, _)| i)
            .expect("at least one memory controller")
    }

    /// A miss request reached a memory controller: queue behind the
    /// channel's bandwidth limit, then access DRAM.
    fn mem_request_arrived(&mut self, f: &mut impl Fabric, line: LineAddr, at: Coord, now: Cycle) {
        let mc = self
            .mc_coords
            .iter()
            .position(|c| *c == at)
            .expect("delivery at a memory controller") as u16;
        // Channel bandwidth queueing counts as memory wait (the waiters'
        // timelines are closed wholesale at the fill), so only the total
        // matters here.
        let done = f.memory_delay(mc as usize, now).total();
        f.schedule(now, done, TimedEvent::MemoryReady { line, mc });
    }

    /// DRAM answered: ship the line to its home bank.
    fn memory_ready(&mut self, f: &mut impl Fabric, line: LineAddr, mc: u16) {
        let home = self.l2.home_cluster(line);
        let dst = self.bank_coord(home, line);
        let flits = self.data_flits;
        f.send(
            self.mc_coords[mc as usize],
            dst,
            TrafficClass::Data,
            flits,
            Token::MemFill { line },
            None,
        );
    }

    /// The fill reached the home bank: absorb it, then serve the waiters.
    fn mem_fill_arrived(&mut self, f: &mut impl Fabric, line: LineAddr, at: Coord, now: Cycle) {
        let delay = self.bank_delay(f, at, now, true).total();
        f.schedule(now, delay, TimedEvent::MemoryFetched { line });
    }

    /// Off-chip memory delivered the line: place it and serve the waiters.
    fn memory_fetched(&mut self, f: &mut impl Fabric, line: LineAddr, now: Cycle) {
        f.obs()
            .emit(Category::Memory, || EventData::MemFill { line: line.0 });
        let waiters = self.txns.take_fill_waiters(line);
        if self.l2.locate(line).is_none() {
            let placed = self.l2.insert(line);
            if let Some(victim) = placed.evicted {
                let from = self.center(placed.cluster);
                self.handle_l2_eviction(f, victim, from);
            }
        }
        let serving = self.l2.locate(line).expect("just inserted");
        let bank = self.bank_coord(serving, line);
        for id in waiters {
            let Some(t) = self.txns.get_mut(id) else {
                continue;
            };
            // Everything since the waiter's last attribution point was
            // spent waiting on this fill (DRAM access, channel queueing,
            // and — under edge controllers — the fill's network legs).
            t.timeline.credit(Phase::MemWait, now);
            let t = *t;
            match t.kind {
                AccessKind::Read | AccessKind::IFetch => {
                    // The fill serves the read directly from the bank.
                    self.counters.bank_accesses += 1;
                    let delay = self.bank_delay(f, bank, now, false);
                    f.schedule(
                        now,
                        delay.total(),
                        TimedEvent::BankReadDone {
                            txn: id,
                            at: bank,
                            queue: delay.queue,
                        },
                    );
                }
                AccessKind::Write => {
                    let seat = *self.seat(t.cpu);
                    f.send(
                        self.center(serving),
                        seat.coord,
                        TrafficClass::Control,
                        1,
                        Token::FoundForWrite {
                            txn: id,
                            cluster: serving,
                        },
                        seat.pillar,
                    );
                }
            }
        }
    }

    /// The writing CPU ships its store data to the line's current bank.
    fn write_data_to(&mut self, f: &mut impl Fabric, id: TxnId, now: Cycle) {
        let Some(t) = self.txns.get(id).copied() else {
            return;
        };
        match self.l2.locate(t.line) {
            Some(cl) => {
                let seat = *self.seat(t.cpu);
                let bank = self.bank_coord(cl, t.line);
                let flits = self.data_flits;
                f.send(
                    seat.coord,
                    bank,
                    TrafficClass::Data,
                    flits,
                    Token::WriteData { txn: id },
                    seat.pillar,
                );
            }
            // Evicted between the probe hit and now: fetch it back.
            None => self.go_to_memory(f, id, now),
        }
    }

    /// A forwarded read request reached a bank (or where the bank used to
    /// hold the line).
    fn bank_fetch_arrived(&mut self, f: &mut impl Fabric, id: TxnId, at: Coord, now: Cycle) {
        let Some(t) = self.txns.get(id).copied() else {
            return;
        };
        // A replica bank can serve the read directly.
        let here = self.layout.cluster_of(at);
        if self.l2.replicas_of(t.line).contains(&here) && self.bank_coord(here, t.line) == at {
            self.counters.bank_accesses += 1;
            let delay = self.bank_delay(f, at, now, false);
            f.schedule(
                now,
                delay.total(),
                TimedEvent::BankReadDone {
                    txn: id,
                    at,
                    queue: delay.queue,
                },
            );
            return;
        }
        match self.l2.locate(t.line) {
            None => self.go_to_memory(f, id, now),
            Some(cl) => {
                let target = self.bank_coord(cl, t.line);
                if target == at {
                    self.counters.bank_accesses += 1;
                    // The baseline's oracle skips probe latency, so the
                    // tag check happens at the bank.
                    let tag = if self.policy.oracle_search() {
                        f.tag_delay(cl, now)
                    } else {
                        ClaimedDelay::NONE
                    };
                    let bank = self.bank_delay(f, at, now, false);
                    f.schedule(
                        now,
                        tag.total() + bank.total(),
                        TimedEvent::BankReadDone {
                            txn: id,
                            at,
                            queue: tag.queue + bank.queue,
                        },
                    );
                } else {
                    // The line migrated while the request was in flight;
                    // chase it.
                    let via = self.via(t.cpu);
                    f.send(
                        at,
                        target,
                        TrafficClass::Control,
                        1,
                        Token::BankFetch { txn: id },
                        via,
                    );
                }
            }
        }
    }

    /// The bank finished reading: route the line to the requester.
    fn bank_read_done(&mut self, f: &mut impl Fabric, id: TxnId, at: Coord) {
        let Some(t) = self.txns.get(id).copied() else {
            return;
        };
        self.l2.touch_at(t.line, self.layout.cluster_of(at));
        let seat = *self.seat(t.cpu);
        let flits = self.data_flits;
        f.send(
            at,
            seat.coord,
            TrafficClass::Data,
            flits,
            Token::DataToCpu { txn: id },
            seat.pillar,
        );
    }

    /// Store data reached the bank.
    fn write_data_arrived(&mut self, f: &mut impl Fabric, id: TxnId, at: Coord, now: Cycle) {
        let Some(t) = self.txns.get(id).copied() else {
            return;
        };
        self.counters.bank_accesses += 1;
        let tag = if self.policy.oracle_search() {
            let cl = self
                .l2
                .locate(t.line)
                .unwrap_or(self.l2.home_cluster(t.line));
            f.tag_delay(cl, now)
        } else {
            ClaimedDelay::NONE
        };
        let bank = self.bank_delay(f, at, now, true);
        f.schedule(
            now,
            tag.total() + bank.total(),
            TimedEvent::BankWritten {
                txn: id,
                at,
                queue: tag.queue + bank.queue,
            },
        );
    }

    /// The bank committed the store: acknowledge the CPU.
    fn bank_written(&mut self, f: &mut impl Fabric, id: TxnId, at: Coord) {
        let Some(t) = self.txns.get(id).copied() else {
            return;
        };
        self.l2.touch(t.line);
        let seat = *self.seat(t.cpu);
        f.send(
            at,
            seat.coord,
            TrafficClass::Control,
            1,
            Token::WriteAck { txn: id },
            seat.pillar,
        );
    }

    /// The read data arrived at the CPU: the transaction completes.
    fn complete_read(&mut self, f: &mut impl Fabric, id: TxnId, now: Cycle) {
        let Some(t) = self.txns.remove(id) else {
            return;
        };
        self.finish_counters(f, id, &t, now);
        let evicted = self.cores[t.cpu.index()].data_returned(t.addr);
        if let Some(ev) = evicted {
            self.dir.evict(t.cpu, ev);
        }
        self.dir.access(t.cpu, t.line, DirAccess::Read);
        let repeated = self.last_accessor.insert(t.line, t.cpu) == Some(t.cpu);
        self.maybe_migrate(f, t.cpu, t.line, repeated);
        self.maybe_replicate(f, t.cpu, t.line);
    }

    /// The store acknowledgement arrived: the transaction completes and
    /// other sharers get invalidated (write-through MSI).
    fn complete_write(&mut self, f: &mut impl Fabric, id: TxnId, now: Cycle) {
        let Some(t) = self.txns.remove(id) else {
            return;
        };
        self.finish_counters(f, id, &t, now);
        self.cores[t.cpu.index()].store_completed();
        // A store makes every L2 replica stale (replication extension).
        let src = self.seat(t.cpu).coord;
        let via = self.via(t.cpu);
        for rc in self.l2.drop_replicas(t.line) {
            self.counters.invalidations += 1;
            let dst = self.center(rc);
            f.send(
                src,
                dst,
                TrafficClass::Coherence,
                1,
                Token::Invalidate { line: t.line },
                via,
            );
        }
        let outcome = self.dir.access(t.cpu, t.line, DirAccess::Write);
        for sharer in outcome.invalidations {
            self.counters.invalidations += 1;
            let dst = self.seat(sharer).coord;
            f.send(
                src,
                dst,
                TrafficClass::Coherence,
                1,
                Token::Invalidate { line: t.line },
                via,
            );
        }
        let repeated = self.last_accessor.insert(t.line, t.cpu) == Some(t.cpu);
        self.maybe_migrate(f, t.cpu, t.line, repeated);
    }

    /// The L2 dropped a line: invalidate every L1 copy — unless the slot
    /// held only a replica (the primary copy, and hence the L1s'
    /// backing, is still resident).
    pub(crate) fn handle_l2_eviction(
        &mut self,
        f: &mut impl Fabric,
        victim: LineAddr,
        from: Coord,
    ) {
        if self.l2.locate(victim).is_some() {
            return; // a replica was evicted; the line itself lives on
        }
        self.counters.l2_evictions += 1;
        for sharer in self.dir.invalidate_all(victim) {
            self.counters.invalidations += 1;
            let dst = self.seat(sharer).coord;
            f.send(
                from,
                dst,
                TrafficClass::Coherence,
                1,
                Token::Invalidate { line: victim },
                None,
            );
        }
    }

    /// After a completed access, take one gradual migration step toward
    /// the accessor (paper §4.2.3) — if the policy migrates at all.
    ///
    /// Lines already inside the accessor's step-1 vicinity do not migrate
    /// (under [`ProtocolPolicy::vicinity_stop`]) — their access latency
    /// is already low, which is exactly why the 3D topology "exercises
    /// [migration] much less frequently ... due to the increased
    /// locality (see Figure 8)" (§5.2): in 3D the vicinity spans whole
    /// layers. The exception is data accessed repeatedly by a single
    /// processor (`repeated`), which keeps migrating until it reaches
    /// that processor's local cluster.
    fn maybe_migrate(&mut self, f: &mut impl Fabric, cpu: CpuId, line: LineAddr, repeated: bool) {
        if !self.policy.migrates() {
            return;
        }
        let Some(cur) = self.l2.locate(line) else {
            return;
        };
        if self.l2.migration_of(line).is_some() {
            return;
        }
        let seat = *self.seat(cpu);
        let acc_cluster = self.layout.cluster_of(seat.coord);
        if cur == acc_cluster {
            return;
        }
        if self.policy.vicinity_stop() && !repeated && self.plans[cpu.index()].step1.contains(&cur)
        {
            return;
        }
        let cluster_cpus = &self.cluster_cpus;
        let own_bit = 1u64 << cpu.index();
        let occupied = move |cl: ClusterId| cluster_cpus[cl.index()] & !own_bit != 0;
        let Some(to) =
            self.policy
                .migration_step(&self.layout, cur, acc_cluster, seat.pillar, &occupied)
        else {
            return;
        };
        if self.l2.begin_migration(line, to).is_ok() {
            let src = self.bank_coord(cur, line);
            let dst = self.bank_coord(to, line);
            // Reading the source bank and writing the destination bank.
            self.counters.bank_accesses += 2;
            let flits = self.data_flits;
            f.send(
                src,
                dst,
                TrafficClass::Migration,
                flits,
                Token::MigrationMove { line },
                None,
            );
        }
    }

    /// After a completed read, optionally install a read-only replica of
    /// a shared line in the reader's local cluster (the NuRapid /
    /// victim-replication alternative of §1–§2; off by default).
    fn maybe_replicate(&mut self, f: &mut impl Fabric, cpu: CpuId, line: LineAddr) {
        if !self.policy.replication() {
            return;
        }
        let Some(primary) = self.l2.locate(line) else {
            return;
        };
        let local = self.plans[cpu.index()].local;
        if primary == local
            || self.l2.has_copy_at(line, local)
            || self.l2.migration_of(line).is_some()
            || self.l2.replicas_of(line).len() >= 2
            || self.dir.sharers(line).len() < 2
        {
            return;
        }
        self.counters.replicas_created += 1;
        self.counters.bank_accesses += 1; // source bank read for the copy
        let src = self.bank_coord(primary, line);
        let dst = self.bank_coord(local, line);
        let flits = self.data_flits;
        f.send(
            src,
            dst,
            TrafficClass::Data,
            flits,
            Token::ReplicaFill {
                line,
                cluster: local,
            },
            self.via(cpu),
        );
    }

    /// A replica copy reached its new bank.
    fn replica_arrived(
        &mut self,
        f: &mut impl Fabric,
        line: LineAddr,
        cluster: ClusterId,
        at: Coord,
        now: Cycle,
    ) {
        let delay = self.bank_delay(f, at, now, true).total();
        f.schedule(now, delay, TimedEvent::ReplicaInstalled { line, cluster });
    }

    /// The new bank absorbed the replica: publish it in the tag array.
    fn replica_installed(&mut self, f: &mut impl Fabric, line: LineAddr, cluster: ClusterId) {
        // The line may have been written, evicted, or already replicated
        // while the copy was in flight; install only if still sensible.
        if self.l2.migration_of(line).is_some() {
            return;
        }
        if let Ok(placed) = self.l2.add_replica(line, cluster) {
            if let Some(victim) = placed.evicted {
                let from = self.center(cluster);
                self.handle_l2_eviction(f, victim, from);
            }
        }
    }

    /// The migrating line arrived at the destination bank.
    fn migration_arrived(&mut self, f: &mut impl Fabric, line: LineAddr, now: Cycle) {
        // The destination bank absorbs the line when its port frees up.
        let at = match self.l2.migration_of(line) {
            Some(to) => self.bank_coord(to, line),
            None => return, // aborted in flight
        };
        let delay = self.bank_delay(f, at, now, true).total();
        f.schedule(now, delay, TimedEvent::MigrationDone { line });
    }

    /// The destination bank finished absorbing the line: commit.
    fn migration_done(&mut self, f: &mut impl Fabric, line: LineAddr) {
        match self.l2.commit_migration(line) {
            Ok(outcome) => {
                self.counters.migrations += 1;
                if let Some(victim) = outcome.evicted {
                    let from = self.center(outcome.to);
                    self.handle_l2_eviction(f, victim, from);
                }
            }
            Err(_) => {
                // Aborted mid-flight (the line was evicted); nothing to do.
            }
        }
    }

    /// A timed event came due. Transaction-scoped events close the
    /// transaction's open segment first, splitting it with the
    /// queue/fan-out amounts the claim recorded (carried in the event —
    /// never pre-credited at claim time, where a racing serve path
    /// could complete first and break the sum invariant).
    pub(crate) fn handle_event(&mut self, f: &mut impl Fabric, ev: TimedEvent, now: Cycle) {
        match ev {
            TimedEvent::ProbeResolved {
                txn,
                cluster,
                queue,
            } => {
                self.credit_event(txn, queue, 0, now);
                self.resolve_probe(f, txn, cluster, now);
            }
            TimedEvent::VerticalClusterResolved {
                txn,
                cluster,
                layer,
                queue,
                fanout,
            } => {
                self.credit_event(txn, queue, fanout, now);
                self.vertical_cluster_resolved(f, txn, cluster, layer, now);
            }
            TimedEvent::BankReadDone { txn, at, queue } => {
                self.credit_event(txn, queue, 0, now);
                self.bank_read_done(f, txn, at);
            }
            TimedEvent::BankWritten { txn, at, queue } => {
                self.credit_event(txn, queue, 0, now);
                self.bank_written(f, txn, at);
            }
            TimedEvent::MemoryReady { line, mc } => self.memory_ready(f, line, mc),
            TimedEvent::MemoryFetched { line } => self.memory_fetched(f, line, now),
            TimedEvent::MigrationDone { line } => self.migration_done(f, line),
            TimedEvent::ReplicaInstalled { line, cluster } => {
                self.replica_installed(f, line, cluster)
            }
        }
    }

    /// A packet reached its destination's local port.
    pub(crate) fn handle_delivered(&mut self, f: &mut impl Fabric, d: Delivered, now: Cycle) {
        let token = Token::decode(d.token);
        self.credit_delivery(token, &d, now);
        match token {
            Token::Probe { txn, cluster } => {
                let delay = f.tag_delay(cluster, now);
                f.schedule(
                    now,
                    delay.total(),
                    TimedEvent::ProbeResolved {
                        txn,
                        cluster,
                        queue: delay.queue,
                    },
                );
            }
            Token::VerticalProbe {
                txn,
                layer: _,
                step,
            } => {
                self.vertical_probe_arrived(f, txn, d.dst, step, now);
            }
            Token::ProbeMiss { txn } => self.probe_missed(f, txn, now),
            Token::BankFetch { txn } => self.bank_fetch_arrived(f, txn, d.dst, now),
            Token::DataToCpu { txn } => self.complete_read(f, txn, now),
            Token::FoundForWrite { txn, cluster: _ } => self.write_data_to(f, txn, now),
            Token::WriteData { txn } => self.write_data_arrived(f, txn, d.dst, now),
            Token::WriteAck { txn } => self.complete_write(f, txn, now),
            Token::MigrationMove { line } => self.migration_arrived(f, line, now),
            Token::ReplicaFill { line, cluster } => {
                self.replica_arrived(f, line, cluster, d.dst, now)
            }
            Token::MemRequest { line } => self.mem_request_arrived(f, line, d.dst, now),
            Token::MemFill { line } => self.mem_fill_arrived(f, line, d.dst, now),
            Token::Invalidate { line } => {
                if let Some(&cpu) = self.cpu_at.get(&d.dst) {
                    self.cores[cpu.index()].invalidate(line);
                }
            }
        }
    }

    // ----- warm-up --------------------------------------------------------

    /// Installs the workload's working set before simulation, standing in
    /// for the paper's 500 M-cycle warm-up run: the shared region goes to
    /// the L2 at its home clusters; each CPU's private regions go where
    /// the migration policy would have pulled them by the end of the
    /// warm-up (for migrating schemes) or to their home clusters (for the
    /// static scheme); hot and code sets additionally fill the owning
    /// CPU's L1s, with the directory kept consistent. Pure state setup —
    /// no cycles pass, no packets fly.
    pub(crate) fn prewarm(&mut self, profile: &BenchmarkProfile) {
        let line_bytes = self.line_bytes;
        let install = |eng: &mut Engine, addr: nim_types::Address, owner: Option<CpuId>| {
            let line = addr.line(line_bytes);
            if eng.l2.locate(line).is_none() {
                let cluster = match owner {
                    Some(cpu) if eng.policy.migrates() => {
                        eng.steady_cluster(cpu, eng.l2.home_cluster(line))
                    }
                    _ => eng.l2.home_cluster(line),
                };
                let placed = eng.l2.insert_at(line, cluster);
                if let Some(victim) = placed.evicted {
                    for sharer in eng.dir.invalidate_all(victim) {
                        eng.cores[sharer.index()].invalidate(victim);
                    }
                }
            }
            line
        };
        // Bulk data first so later hot/code installs win any conflicts.
        for addr in shared_region(profile).line_addrs().collect::<Vec<_>>() {
            install(self, addr, None);
        }
        for i in 0..self.cores.len() {
            let cpu = CpuId::from_index(i);
            let regions = cpu_regions(profile, cpu);
            for addr in regions.stream.line_addrs().collect::<Vec<_>>() {
                install(self, addr, Some(cpu));
            }
        }
        for i in 0..self.cores.len() {
            let cpu = CpuId::from_index(i);
            let regions = cpu_regions(profile, cpu);
            for addr in regions.hot.line_addrs().collect::<Vec<_>>() {
                let line = install(self, addr, Some(cpu));
                if let Some(evicted) = self.cores[i].prefill(addr, AccessKind::Read) {
                    self.dir.evict(cpu, evicted);
                }
                self.dir.access(cpu, line, DirAccess::Read);
            }
            for addr in regions.code.line_addrs().collect::<Vec<_>>() {
                install(self, addr, Some(cpu));
                self.cores[i].prefill(addr, AccessKind::IFetch);
            }
        }
    }

    /// Where the migration policy eventually parks a line that starts in
    /// `from` and is accessed only by `cpu` (the fixed point of repeated
    /// single-step migrations).
    fn steady_cluster(&self, cpu: CpuId, from: ClusterId) -> ClusterId {
        let seat = self.seats[cpu.index()];
        let acc_cluster = self.layout.cluster_of(seat.coord);
        let own_bit = 1u64 << cpu.index();
        let cluster_cpus = &self.cluster_cpus;
        let occupied = move |cl: ClusterId| cluster_cpus[cl.index()] & !own_bit != 0;
        let mut cur = from;
        for _ in 0..64 {
            match self
                .policy
                .migration_step(&self.layout, cur, acc_cluster, seat.pillar, &occupied)
            {
                Some(next) => cur = next,
                None => break,
            }
        }
        cur
    }
}
