//! Property-based tests for replacement, placement, and migration state.

use nim_cache::{NucaL2, TreePlru};
use nim_types::{ClusterId, L2Config, LineAddr};
use proptest::prelude::*;

proptest! {
    #[test]
    fn plru_never_victimises_the_most_recent_way(
        ways_log in 1u32..=5,
        touches in proptest::collection::vec(any::<u32>(), 1..200),
    ) {
        let ways = 1 << ways_log;
        let mut plru = TreePlru::new(ways);
        for t in touches {
            let way = t % ways;
            plru.touch(way);
            prop_assert_ne!(plru.victim(), way);
        }
    }

    #[test]
    fn plru_victim_is_always_a_valid_way(
        ways_log in 0u32..=5,
        touches in proptest::collection::vec(any::<u32>(), 0..100),
    ) {
        let ways = 1 << ways_log;
        let mut plru = TreePlru::new(ways);
        for t in touches {
            plru.touch(t % ways);
            prop_assert!(plru.victim() < ways);
        }
    }
}

/// A random operation against the NUCA L2.
#[derive(Clone, Debug)]
enum L2Op {
    Insert(u16),
    Remove(u16),
    Touch(u16),
    BeginMigration(u16, u16),
    CommitMigration(u16),
    AbortMigration(u16),
}

fn arb_op() -> impl Strategy<Value = L2Op> {
    prop_oneof![
        any::<u16>().prop_map(L2Op::Insert),
        any::<u16>().prop_map(L2Op::Remove),
        any::<u16>().prop_map(L2Op::Touch),
        (any::<u16>(), any::<u16>()).prop_map(|(l, c)| L2Op::BeginMigration(l, c)),
        any::<u16>().prop_map(L2Op::CommitMigration),
        any::<u16>().prop_map(L2Op::AbortMigration),
    ]
}

/// Lines drawn from a small pool so operations actually collide.
fn line(seed: u16) -> LineAddr {
    LineAddr(u64::from(seed % 512) * 37)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn l2_stays_consistent_under_random_operations(
        ops in proptest::collection::vec(arb_op(), 1..400),
    ) {
        let cfg = L2Config::default();
        let mut l2 = NucaL2::new(&cfg);
        let mut expected_resident = std::collections::HashSet::new();
        for op in ops {
            match op {
                L2Op::Insert(s) => {
                    let line = line(s);
                    if l2.locate(line).is_none() {
                        let placed = l2.insert(line);
                        expected_resident.insert(line);
                        if let Some(victim) = placed.evicted {
                            expected_resident.remove(&victim);
                        }
                        prop_assert_eq!(l2.locate(line), Some(placed.cluster));
                    }
                }
                L2Op::Remove(s) => {
                    let line = line(s);
                    let was = l2.locate(line).is_some();
                    let removed = l2.remove(line).is_some();
                    prop_assert_eq!(was, removed);
                    expected_resident.remove(&line);
                }
                L2Op::Touch(s) => {
                    let line = line(s);
                    let located = l2.locate(line);
                    prop_assert_eq!(l2.touch(line), located);
                }
                L2Op::BeginMigration(s, c) => {
                    let line = line(s);
                    let to = ClusterId(c % cfg.clusters as u16);
                    let _ = l2.begin_migration(line, to);
                }
                L2Op::CommitMigration(s) => {
                    let line = line(s);
                    if let Some(to) = l2.migration_of(line) {
                        let out = l2.commit_migration(line).expect("in flight");
                        prop_assert_eq!(out.to, to);
                        prop_assert_eq!(l2.locate(line), Some(to));
                        if let Some(victim) = out.evicted {
                            expected_resident.remove(&victim);
                        }
                    }
                }
                L2Op::AbortMigration(s) => {
                    l2.abort_migration(line(s));
                }
            }
            // Invariants: every expected line is resident, occupancy
            // matches, migrations only target resident lines.
            prop_assert_eq!(l2.occupancy(), expected_resident.len());
            for &l in &expected_resident {
                prop_assert!(l2.locate(l).is_some());
            }
        }
        // Cluster-level occupancy must add up.
        let total: usize = (0..cfg.clusters)
            .map(|c| l2.cluster_occupancy(ClusterId(c as u16)))
            .sum();
        prop_assert_eq!(total, l2.occupancy());
    }

    #[test]
    fn migrating_lines_stay_visible_until_commit(
        seeds in proptest::collection::vec(any::<u16>(), 1..100),
    ) {
        let cfg = L2Config::default();
        let mut l2 = NucaL2::new(&cfg);
        for s in seeds {
            let l = line(s);
            if l2.locate(l).is_none() {
                l2.insert(l);
            }
            let from = l2.locate(l).expect("resident");
            let to = ClusterId((from.0 + 1) % cfg.clusters as u16);
            if l2.begin_migration(l, to).is_ok() {
                // Lazy migration: the old location answers until commit.
                prop_assert_eq!(l2.locate(l), Some(from));
                l2.commit_migration(l).expect("commit");
                prop_assert_eq!(l2.locate(l), Some(to));
            }
        }
    }
}
