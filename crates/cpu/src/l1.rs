//! Private L1 cache (Table 4: 64 KB split I/D, 2-way, 64 B lines,
//! 3-cycle, write-through).
//!
//! True LRU per set (trivial at 2 ways). Stores are write-through and
//! no-write-allocate: every store is forwarded to the L2, and a store
//! miss does not install the line.

use nim_types::codec::{ByteReader, ByteWriter, Checkpoint, CodecError};
use nim_types::{Address, L1Config, LineAddr};

/// Hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct L1Stats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
}

impl L1Stats {
    /// Miss rate over all lookups (0 when the cache is untouched).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[derive(Clone, Debug)]
struct Way {
    line: LineAddr,
    stamp: u64,
}

/// One side (I or D) of a private L1 cache.
#[derive(Clone, Debug)]
pub struct L1Cache {
    sets: Vec<Vec<Way>>,
    ways: usize,
    line_bytes: u64,
    clock: u64,
    stats: L1Stats,
}

impl L1Cache {
    /// Creates an empty L1 with the given geometry.
    pub fn new(cfg: &L1Config) -> Self {
        let sets = cfg.sets() as usize;
        Self {
            sets: vec![Vec::new(); sets],
            ways: cfg.ways as usize,
            line_bytes: u64::from(cfg.line_bytes),
            clock: 0,
            stats: L1Stats::default(),
        }
    }

    /// Hit/miss counters.
    #[inline]
    pub fn stats(&self) -> &L1Stats {
        &self.stats
    }

    #[inline]
    fn set_of(&self, line: LineAddr) -> usize {
        (line.0 % self.sets.len() as u64) as usize
    }

    /// Looks up the line containing `addr`, updating LRU and counters.
    pub fn access(&mut self, addr: Address) -> bool {
        let line = addr.line(self.line_bytes);
        let set = self.set_of(line);
        self.clock += 1;
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.line == line) {
            way.stamp = self.clock;
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Whether the line containing `addr` is resident (no LRU/counter
    /// side effects).
    pub fn contains(&self, addr: Address) -> bool {
        let line = addr.line(self.line_bytes);
        let set = self.set_of(line);
        self.sets[set].iter().any(|w| w.line == line)
    }

    /// Installs the line containing `addr`, evicting LRU if the set is
    /// full. Returns the evicted line (the directory must be told).
    pub fn fill(&mut self, addr: Address) -> Option<LineAddr> {
        let line = addr.line(self.line_bytes);
        let set = self.set_of(line);
        self.clock += 1;
        let clock = self.clock;
        let ways = &mut self.sets[set];
        if ways.iter().any(|w| w.line == line) {
            return None; // already present (e.g. racing fills)
        }
        if ways.len() < self.ways {
            ways.push(Way { line, stamp: clock });
            return None;
        }
        let lru = ways
            .iter_mut()
            .min_by_key(|w| w.stamp)
            .expect("set is full, hence nonempty");
        let evicted = lru.line;
        lru.line = line;
        lru.stamp = clock;
        Some(evicted)
    }

    /// Drops `line` (coherence invalidation). Returns whether it was
    /// present.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let set = self.set_of(line);
        let ways = &mut self.sets[set];
        match ways.iter().position(|w| w.line == line) {
            Some(i) => {
                ways.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// Resident lines.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

impl Checkpoint for L1Cache {
    fn save(&self, w: &mut ByteWriter) {
        w.u64(self.clock);
        w.u64(self.stats.hits);
        w.u64(self.stats.misses);
        w.u32(u32::try_from(self.sets.len()).expect("set count"));
        for set in &self.sets {
            w.u32(u32::try_from(set.len()).expect("way count"));
            for way in set {
                w.u64(way.line.0);
                w.u64(way.stamp);
            }
        }
    }

    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.clock = r.u64()?;
        self.stats.hits = r.u64()?;
        self.stats.misses = r.u64()?;
        if r.u32()? as usize != self.sets.len() {
            return Err(CodecError::Corrupt("L1 set count mismatch"));
        }
        for set in &mut self.sets {
            let n = r.u32()? as usize;
            if n > self.ways {
                return Err(CodecError::Corrupt("L1 set overflows its ways"));
            }
            set.clear();
            for _ in 0..n {
                set.push(Way {
                    line: LineAddr(r.u64()?),
                    stamp: r.u64()?,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> L1Cache {
        L1Cache::new(&L1Config::default())
    }

    #[test]
    fn geometry_matches_table_4() {
        let cfg = L1Config::default();
        assert_eq!(cfg.sets(), 512); // 64 KB / (64 B * 2 ways)
        let cache = L1Cache::new(&cfg);
        assert_eq!(cache.sets.len(), 512);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = l1();
        let a = Address(0x1234);
        assert!(!c.access(a));
        assert_eq!(c.fill(a), None);
        assert!(c.access(a));
        assert!(c.contains(a));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().miss_rate(), 0.5);
    }

    #[test]
    fn same_line_different_bytes_hit() {
        let mut c = l1();
        c.fill(Address(0x1000));
        assert!(c.access(Address(0x103f)), "same 64 B line");
        assert!(!c.access(Address(0x1040)), "next line");
    }

    #[test]
    fn two_way_set_evicts_lru() {
        let mut c = l1();
        // Three lines mapping to the same set: stride = sets * line = 32 KB.
        let stride = 512 * 64u64;
        let (a, b, d) = (Address(0), Address(stride), Address(2 * stride));
        c.fill(a);
        c.fill(b);
        c.access(a); // a is now MRU
        let evicted = c.fill(d).expect("set of 2 overflows");
        assert_eq!(evicted, b.line(64), "LRU way evicted");
        assert!(c.contains(a) && c.contains(d) && !c.contains(b));
    }

    #[test]
    fn invalidate_removes_the_line() {
        let mut c = l1();
        let a = Address(0x40);
        c.fill(a);
        assert!(c.invalidate(a.line(64)));
        assert!(!c.contains(a));
        assert!(!c.invalidate(a.line(64)));
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn duplicate_fill_is_a_no_op() {
        let mut c = l1();
        let a = Address(0x40);
        assert_eq!(c.fill(a), None);
        assert_eq!(c.fill(a), None);
        assert_eq!(c.occupancy(), 1);
    }
}
