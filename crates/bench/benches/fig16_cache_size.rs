//! Figure 16 — average L2 hit latency at 16/32/64 MB for the 2D and 3D
//! dynamic schemes (the 3D topology scales more gracefully).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nim_bench::scale_from_env;
use nim_core::experiments::fig16_cache_size;
use nim_workload::BenchmarkProfile;

fn bench(c: &mut Criterion) {
    let scale = scale_from_env(true);
    let bench_set = [BenchmarkProfile::art()];
    let mut group = c.benchmark_group("fig16");
    group.sample_size(10);
    group.bench_function("art_16_32_64_mb", |b| {
        b.iter(|| black_box(fig16_cache_size(&bench_set, scale).expect("runs complete")))
    });
    group.finish();
    for row in fig16_cache_size(&bench_set, scale).expect("runs complete") {
        eprintln!(
            "fig16: {:<6} {:>3} MB  2D {:.2}  3D {:.2} cycles",
            row.benchmark, row.l2_mb, row.latency_2d, row.latency_3d
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
