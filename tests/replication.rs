//! Integration tests of the replication extension: read-shared lines get
//! replicated into readers' local clusters, replicas serve hits, and
//! writes invalidate them.

use network_in_memory::core::{Scheme, SystemBuilder};
use network_in_memory::workload::BenchmarkProfile;

fn run(replication: bool, scheme: Scheme) -> network_in_memory::core::RunReport {
    SystemBuilder::new(scheme)
        .seed(5)
        .warmup_transactions(500)
        .sampled_transactions(6_000)
        .replication(replication)
        .build()
        .unwrap()
        .run(&BenchmarkProfile::swim()) // shared-heavy: replication's home turf
        .unwrap()
}

#[test]
fn replication_creates_replicas_only_when_enabled() {
    let off = run(false, Scheme::CmpSnuca3d);
    assert_eq!(off.counters.replicas_created, 0);
    let on = run(true, Scheme::CmpSnuca3d);
    assert!(
        on.counters.replicas_created > 100,
        "shared-heavy workload must replicate ({} created)",
        on.counters.replicas_created
    );
}

#[test]
fn replication_improves_static_nuca_latency() {
    // Without migration, replication is the only locality mechanism; on a
    // shared-read-heavy workload it must pay for itself.
    let off = run(false, Scheme::CmpSnuca3d);
    let on = run(true, Scheme::CmpSnuca3d);
    assert!(
        on.avg_l2_hit_latency() < off.avg_l2_hit_latency(),
        "replication {:.2} must beat no-replication {:.2}",
        on.avg_l2_hit_latency(),
        off.avg_l2_hit_latency()
    );
}

#[test]
fn writes_invalidate_replicas() {
    let on = run(true, Scheme::CmpSnuca3d);
    // Invalidation traffic includes replica drops; with ~10% stores on a
    // replicated shared region there must be plenty.
    assert!(
        on.counters.invalidations > 0,
        "stores to replicated lines must invalidate"
    );
}

#[test]
fn replication_composes_with_migration() {
    let report = run(true, Scheme::CmpDnuca3d);
    assert!(report.counters.replicas_created > 0);
    assert!(report.counters.migrations > 0);
    assert!(report.avg_l2_hit_latency() > 0.0);
}
