//! System configuration (the paper's Table 4).
//!
//! [`SystemConfig::default`] reproduces the default parameters of the
//! evaluation exactly: 8 in-order processors, 64 KB 2-way write-through L1s,
//! a 16 MB L2 organised as 16 clusters of 16 × 64 KB banks, a 24 KB tag
//! array per cluster, 260-cycle memory, and a 2-layer network with 8 dTDMA
//! pillars, dimension-order wormhole routing, 128-bit flits, and 1-cycle
//! routers.

use core::error::Error;
use core::fmt;

use crate::addr::L2Map;

/// Configuration error returned by [`SystemConfig::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A parameter that must be a nonzero power of two is not.
    NotPowerOfTwo {
        /// Name of the offending parameter.
        what: &'static str,
        /// The rejected value.
        value: u64,
    },
    /// A parameter is zero that must not be.
    Zero(&'static str),
    /// The flit/packet geometry cannot carry one cache line per packet.
    PacketTooSmall {
        /// Bits carried by one data packet.
        packet_bits: u32,
        /// Bits in one cache line.
        line_bits: u32,
    },
    /// More CPUs than the placement policy can seat (at most 4 CPUs per
    /// pillar per layer, paper §3.3).
    TooManyCpus {
        /// Requested CPU count.
        cpus: u32,
        /// Maximum seats available: `4 × pillars × layers`.
        seats: u32,
    },
    /// The dTDMA bus saturates beyond 8 layers (paper §3.1: the bus is
    /// preferable to a vertical NoC only below 9 device layers).
    TooManyLayers(u8),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { what, value } => {
                write!(f, "{what} must be a nonzero power of two, got {value}")
            }
            ConfigError::Zero(what) => write!(f, "{what} must be nonzero"),
            ConfigError::PacketTooSmall {
                packet_bits,
                line_bits,
            } => write!(
                f,
                "a data packet carries {packet_bits} bits but a cache line is {line_bits} bits"
            ),
            ConfigError::TooManyCpus { cpus, seats } => {
                write!(
                    f,
                    "{cpus} CPUs requested but placement has only {seats} seats"
                )
            }
            ConfigError::TooManyLayers(layers) => {
                write!(f, "{layers} layers exceed the 8-layer dTDMA bus limit")
            }
        }
    }
}

impl Error for ConfigError {}

/// Private L1 cache parameters (split I/D in the paper; both sides share
/// the same geometry so one config describes either).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L1Config {
    /// Capacity in bytes (per side).
    pub bytes: u32,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Hit latency in cycles.
    pub latency: u32,
    /// Whether stores write through to L2 (the paper's L1 is write-through).
    pub write_through: bool,
}

impl L1Config {
    /// Number of sets.
    pub const fn sets(&self) -> u32 {
        self.bytes / (self.line_bytes * self.ways)
    }

    /// Total lines.
    pub const fn lines(&self) -> u32 {
        self.bytes / self.line_bytes
    }
}

impl Default for L1Config {
    /// Table 4: 64 KB, 2-way, 64 B lines, 3-cycle, write-through.
    fn default() -> Self {
        Self {
            bytes: 64 * 1024,
            ways: 2,
            line_bytes: 64,
            latency: 3,
            write_through: true,
        }
    }
}

/// Shared NUCA L2 parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L2Config {
    /// Number of clusters (each with its own tag array).
    pub clusters: u32,
    /// Banks per cluster.
    pub banks_per_cluster: u32,
    /// Capacity of one bank in bytes.
    pub bank_bytes: u32,
    /// Associativity (per set, within a bank).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Access latency of one bank in cycles.
    pub bank_latency: u32,
    /// Access latency of a cluster tag array in cycles.
    pub tag_latency: u32,
}

impl L2Config {
    /// Total L2 capacity in bytes.
    pub const fn total_bytes(&self) -> u64 {
        self.clusters as u64 * self.banks_per_cluster as u64 * self.bank_bytes as u64
    }

    /// Total number of banks.
    pub const fn total_banks(&self) -> u32 {
        self.clusters * self.banks_per_cluster
    }

    /// Sets per bank.
    pub const fn sets_per_bank(&self) -> u32 {
        self.bank_bytes / (self.line_bytes * self.ways)
    }

    /// Lines per cluster.
    pub const fn lines_per_cluster(&self) -> u32 {
        self.banks_per_cluster * self.bank_bytes / self.line_bytes
    }

    /// The address decomposition for this geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not made of powers of two; call
    /// [`SystemConfig::validate`] first for a `Result`.
    pub fn map(&self) -> L2Map {
        L2Map::new(self.clusters, self.banks_per_cluster, self.sets_per_bank())
    }

    /// Returns a copy scaled to `factor` times the capacity by widening
    /// each cluster (the paper's Fig. 16 scaling: cluster count and
    /// associativity stay fixed, banks per cluster grow).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not a power of two.
    #[must_use]
    pub fn scaled(&self, factor: u32) -> Self {
        assert!(
            factor.is_power_of_two(),
            "scale factor must be a power of two"
        );
        Self {
            banks_per_cluster: self.banks_per_cluster * factor,
            ..*self
        }
    }
}

impl Default for L2Config {
    /// Table 4: 16 MB as 16 clusters × 16 banks × 64 KB, 16-way, 64 B
    /// lines, 5-cycle banks, 4-cycle tag arrays.
    fn default() -> Self {
        Self {
            clusters: 16,
            banks_per_cluster: 16,
            bank_bytes: 64 * 1024,
            ways: 16,
            line_bytes: 64,
            bank_latency: 5,
            tag_latency: 4,
        }
    }
}

/// Where the vertical pillars stand within a layer.
///
/// The paper studies only the spread placement (§3.3: pillars as far
/// apart as possible, never on edges); the other strategies exist to
/// sweep the placement dimension of the design space.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PillarPlacement {
    /// A uniform interior lattice, each pillar at the centre of its
    /// lattice cell (the paper's rule and the default).
    #[default]
    Spread,
    /// Pillars evenly spaced along the perimeter of the interior
    /// rectangle one node in from the mesh edge — near the corners and
    /// edges of the layer, leaving the centre free.
    Corners,
    /// Pillars along the main diagonal of the interior rectangle.
    Diagonal,
}

impl PillarPlacement {
    /// Every placement strategy, in sweep order.
    pub const ALL: [PillarPlacement; 3] = [
        PillarPlacement::Spread,
        PillarPlacement::Corners,
        PillarPlacement::Diagonal,
    ];

    /// Stable lower-case name (CLI value and sweep label).
    pub const fn name(self) -> &'static str {
        match self {
            PillarPlacement::Spread => "spread",
            PillarPlacement::Corners => "corners",
            PillarPlacement::Diagonal => "diagonal",
        }
    }

    /// Parses a [`PillarPlacement::name`] back to the strategy.
    ///
    /// # Errors
    ///
    /// Returns the unknown name.
    pub fn parse(s: &str) -> Result<Self, &str> {
        match s {
            "spread" => Ok(PillarPlacement::Spread),
            "corners" => Ok(PillarPlacement::Corners),
            "diagonal" => Ok(PillarPlacement::Diagonal),
            other => Err(other),
        }
    }
}

/// On-chip network parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetworkConfig {
    /// Device layers in the 3D stack (1 = a conventional 2D chip).
    pub layers: u8,
    /// Number of vertical dTDMA pillars (ignored when `layers == 1`).
    pub pillars: u16,
    /// Where the pillars stand within a layer.
    pub pillar_placement: PillarPlacement,
    /// Flit width in bits.
    pub flit_bits: u32,
    /// Width of the vertical dTDMA bus in bits. Narrower buses (fewer
    /// through-silicon wires — a coarser via-pitch budget, Table 2)
    /// serialise each flit over several bus cycles.
    pub bus_width_bits: u32,
    /// Flits per *data* packet (a 64 B line in 4 × 128-bit flits).
    pub data_packet_flits: u32,
    /// Flits per *control* packet (requests, acks, tag probes).
    pub control_packet_flits: u32,
    /// Router traversal latency in cycles (single-stage router).
    pub router_latency: u32,
    /// Virtual channels per physical channel.
    pub vcs_per_port: u32,
    /// Depth of each virtual-channel buffer in flits (one message deep).
    pub vc_depth_flits: u32,
}

impl NetworkConfig {
    /// Bits carried by one data packet.
    pub const fn data_packet_bits(&self) -> u32 {
        self.flit_bits * self.data_packet_flits
    }

    /// Bus cycles needed to move one flit across a pillar.
    pub const fn bus_cycles_per_flit(&self) -> u32 {
        self.flit_bits.div_ceil(self.bus_width_bits)
    }
}

impl Default for NetworkConfig {
    /// Table 4: 2 layers, 8 pillars, dimension-order wormhole, 128-bit
    /// flits, 1-cycle routers; §3.2: 3 VCs per port, each one 4-flit
    /// message deep.
    fn default() -> Self {
        Self {
            layers: 2,
            pillars: 8,
            pillar_placement: PillarPlacement::Spread,
            flit_bits: 128,
            bus_width_bits: 128,
            data_packet_flits: 4,
            control_packet_flits: 1,
            router_latency: 1,
            vcs_per_port: 3,
            vc_depth_flits: 4,
        }
    }
}

/// Full system configuration (Table 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SystemConfig {
    /// Number of processor cores.
    pub num_cpus: u32,
    /// Instructions issued per cycle (the paper models single-issue cores).
    pub issue_width: u32,
    /// Private L1 parameters (applies to both I and D sides).
    pub l1: L1Config,
    /// Shared L2 parameters.
    pub l2: L2Config,
    /// Off-chip memory latency in cycles.
    pub memory_latency: u32,
    /// Number of memory controllers (DRAM channels) on the edges of
    /// layer 0.
    pub memory_controllers: u16,
    /// Minimum cycles between successive requests accepted by one memory
    /// controller (the channel-bandwidth limit: one 64 B line per
    /// interval).
    pub memory_interval: u32,
    /// Network parameters.
    pub network: NetworkConfig,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            num_cpus: 8,
            issue_width: 1,
            l1: L1Config::default(),
            l2: L2Config::default(),
            memory_latency: 260,
            memory_controllers: 4,
            memory_interval: 16,
            network: NetworkConfig::default(),
        }
    }
}

impl SystemConfig {
    /// Checks that the configuration is internally consistent.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated constraint:
    /// power-of-two geometry, nonzero counts, one-line-per-packet capacity,
    /// CPU seating limits, and the 8-layer dTDMA bound.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn pow2(what: &'static str, v: u64) -> Result<(), ConfigError> {
            if v > 0 && v.is_power_of_two() {
                Ok(())
            } else {
                Err(ConfigError::NotPowerOfTwo { what, value: v })
            }
        }
        if self.num_cpus == 0 {
            return Err(ConfigError::Zero("num_cpus"));
        }
        if self.issue_width == 0 {
            return Err(ConfigError::Zero("issue_width"));
        }
        if self.network.layers == 0 {
            return Err(ConfigError::Zero("network.layers"));
        }
        if self.network.layers > 1 && self.network.pillars == 0 {
            return Err(ConfigError::Zero("network.pillars"));
        }
        if self.network.layers > 8 {
            return Err(ConfigError::TooManyLayers(self.network.layers));
        }
        if self.network.layers > 1 && self.network.bus_width_bits == 0 {
            return Err(ConfigError::Zero("network.bus_width_bits"));
        }
        if self.memory_controllers == 0 {
            return Err(ConfigError::Zero("memory_controllers"));
        }
        if self.memory_interval == 0 {
            return Err(ConfigError::Zero("memory_interval"));
        }
        pow2("l1.bytes", self.l1.bytes.into())?;
        pow2("l1.ways", self.l1.ways.into())?;
        pow2("l1.line_bytes", self.l1.line_bytes.into())?;
        pow2("l2.clusters", self.l2.clusters.into())?;
        pow2("l2.banks_per_cluster", self.l2.banks_per_cluster.into())?;
        pow2("l2.bank_bytes", self.l2.bank_bytes.into())?;
        pow2("l2.ways", self.l2.ways.into())?;
        pow2("l2.line_bytes", self.l2.line_bytes.into())?;
        pow2("l2.sets_per_bank", self.l2.sets_per_bank().into())?;
        let line_bits = self.l2.line_bytes * 8;
        if self.network.data_packet_bits() < line_bits {
            return Err(ConfigError::PacketTooSmall {
                packet_bits: self.network.data_packet_bits(),
                line_bits,
            });
        }
        if self.network.layers > 1 {
            let seats = 4 * u32::from(self.network.pillars) * u32::from(self.network.layers);
            if self.num_cpus > seats {
                return Err(ConfigError::TooManyCpus {
                    cpus: self.num_cpus,
                    seats,
                });
            }
        }
        Ok(())
    }

    /// Convenience: a 2D (single-layer) variant of this configuration.
    #[must_use]
    pub fn flattened(&self) -> Self {
        let mut cfg = *self;
        cfg.network.layers = 1;
        cfg
    }

    /// Convenience: the same configuration with `layers` device layers.
    #[must_use]
    pub fn with_layers(&self, layers: u8) -> Self {
        let mut cfg = *self;
        cfg.network.layers = layers;
        cfg
    }

    /// Convenience: the same configuration with `pillars` vertical buses.
    #[must_use]
    pub fn with_pillars(&self, pillars: u16) -> Self {
        let mut cfg = *self;
        cfg.network.pillars = pillars;
        cfg
    }

    /// Convenience: the same configuration with another pillar placement
    /// strategy.
    #[must_use]
    pub fn with_pillar_placement(&self, placement: PillarPlacement) -> Self {
        let mut cfg = *self;
        cfg.network.pillar_placement = placement;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_4() {
        let cfg = SystemConfig::default();
        assert_eq!(cfg.num_cpus, 8);
        assert_eq!(cfg.issue_width, 1);
        assert_eq!(cfg.l1.bytes, 64 * 1024);
        assert_eq!(cfg.l1.ways, 2);
        assert_eq!(cfg.l1.line_bytes, 64);
        assert_eq!(cfg.l1.latency, 3);
        assert!(cfg.l1.write_through);
        assert_eq!(cfg.l2.total_bytes(), 16 * 1024 * 1024);
        assert_eq!(cfg.l2.total_banks(), 256);
        assert_eq!(cfg.l2.bank_bytes, 64 * 1024);
        assert_eq!(cfg.l2.ways, 16);
        assert_eq!(cfg.l2.bank_latency, 5);
        assert_eq!(cfg.l2.tag_latency, 4);
        assert_eq!(cfg.memory_latency, 260);
        assert_eq!(cfg.memory_controllers, 4);
        assert_eq!(cfg.memory_interval, 16);
        assert_eq!(cfg.network.layers, 2);
        assert_eq!(cfg.network.pillars, 8);
        assert_eq!(cfg.network.flit_bits, 128);
        assert_eq!(cfg.network.router_latency, 1);
        cfg.validate().expect("default config must validate");
    }

    #[test]
    fn bus_serialisation_follows_the_width() {
        let mut net = NetworkConfig::default();
        assert_eq!(net.bus_cycles_per_flit(), 1, "full-width bus");
        net.bus_width_bits = 64;
        assert_eq!(net.bus_cycles_per_flit(), 2);
        net.bus_width_bits = 48;
        assert_eq!(net.bus_cycles_per_flit(), 3, "rounded up");
    }

    #[test]
    fn zero_width_bus_is_rejected_on_stacks() {
        let mut cfg = SystemConfig::default();
        cfg.network.bus_width_bits = 0;
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::Zero("network.bus_width_bits"))
        );
        let flat = cfg.flattened();
        flat.validate().expect("2D chips have no bus to validate");
    }

    #[test]
    fn packet_carries_exactly_one_line() {
        let cfg = SystemConfig::default();
        // 4 flits × 128 bits = 512 bits = 64 B (paper §3.2).
        assert_eq!(cfg.network.data_packet_bits(), 512);
        assert_eq!(cfg.network.data_packet_bits(), cfg.l2.line_bytes * 8);
    }

    #[test]
    fn sets_per_bank_is_64() {
        assert_eq!(L2Config::default().sets_per_bank(), 64);
    }

    #[test]
    fn scaled_l2_grows_clusters_not_count() {
        let l2 = L2Config::default().scaled(4);
        assert_eq!(l2.clusters, 16);
        assert_eq!(l2.banks_per_cluster, 64);
        assert_eq!(l2.total_bytes(), 64 * 1024 * 1024);
        assert_eq!(l2.ways, 16, "associativity maintained (paper Fig. 16)");
    }

    #[test]
    fn validate_rejects_zero_cpus() {
        let cfg = SystemConfig {
            num_cpus: 0,
            ..SystemConfig::default()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::Zero("num_cpus")));
    }

    #[test]
    fn validate_rejects_nine_layers() {
        let cfg = SystemConfig::default().with_layers(9);
        assert_eq!(cfg.validate(), Err(ConfigError::TooManyLayers(9)));
    }

    #[test]
    fn validate_rejects_small_packets() {
        let mut cfg = SystemConfig::default();
        cfg.network.data_packet_flits = 2;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::PacketTooSmall { .. })
        ));
    }

    #[test]
    fn validate_rejects_overfull_pillars() {
        let mut cfg = SystemConfig::default().with_pillars(1).with_layers(2);
        cfg.num_cpus = 9;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::TooManyCpus { .. })
        ));
    }

    #[test]
    fn validate_rejects_non_pow2_geometry() {
        let mut cfg = SystemConfig::default();
        cfg.l2.clusters = 12;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::NotPowerOfTwo {
                what: "l2.clusters",
                ..
            })
        ));
    }

    #[test]
    fn pillar_placement_names_round_trip() {
        assert_eq!(
            NetworkConfig::default().pillar_placement,
            PillarPlacement::Spread
        );
        for p in PillarPlacement::ALL {
            assert_eq!(PillarPlacement::parse(p.name()), Ok(p));
        }
        assert_eq!(PillarPlacement::parse("ring"), Err("ring"));
        let cfg = SystemConfig::default().with_pillar_placement(PillarPlacement::Corners);
        assert_eq!(cfg.network.pillar_placement, PillarPlacement::Corners);
        cfg.validate().expect("placement does not affect validity");
    }

    #[test]
    fn flattened_is_single_layer() {
        let cfg = SystemConfig::default().flattened();
        assert_eq!(cfg.network.layers, 1);
        cfg.validate().expect("2D config must validate");
    }

    #[test]
    fn errors_display_something_useful() {
        let err = ConfigError::TooManyLayers(12);
        assert!(err.to_string().contains("12"));
        let err = ConfigError::PacketTooSmall {
            packet_bits: 256,
            line_bits: 512,
        };
        assert!(err.to_string().contains("256"));
    }
}
