//! Strongly-typed identifiers.
//!
//! Every entity in the simulated chip — CPUs, cache-bank clusters, banks,
//! vertical pillars, in-flight packets — gets its own newtype so that the
//! type system keeps the many small integers flying around the simulator
//! from being mixed up ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use core::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $repr:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $repr);

        impl $name {
            /// Returns the raw index value.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an identifier from a raw `usize` index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in the underlying
            /// representation.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(<$repr>::try_from(index).expect(concat!(
                    stringify!($name),
                    " index out of range"
                )))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$repr> for $name {
            fn from(value: $repr) -> Self {
                Self(value)
            }
        }

        impl From<$name> for $repr {
            fn from(value: $name) -> $repr {
                value.0
            }
        }
    };
}

define_id! {
    /// Identifies one processor core.
    CpuId, u16, "cpu"
}

define_id! {
    /// Identifies one cluster of L2 cache banks (with its own tag array).
    ClusterId, u16, "cl"
}

define_id! {
    /// Identifies one L2 cache bank (globally, across all clusters/layers).
    BankId, u32, "bank"
}

define_id! {
    /// Identifies one vertical dTDMA communication pillar.
    PillarId, u16, "pillar"
}

define_id! {
    /// Identifies one packet travelling through the on-chip network.
    PacketId, u64, "pkt"
}

impl PacketId {
    /// Returns the next packet identifier, used by packet allocators.
    #[inline]
    #[must_use]
    pub fn next(self) -> Self {
        Self(self.0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_usize() {
        assert_eq!(CpuId::from_index(7).index(), 7);
        assert_eq!(ClusterId::from_index(15).index(), 15);
        assert_eq!(BankId::from_index(255).index(), 255);
        assert_eq!(PillarId::from_index(3).index(), 3);
        assert_eq!(PacketId::from_index(123_456).index(), 123_456);
    }

    #[test]
    fn ids_round_trip_through_raw_repr() {
        assert_eq!(u16::from(CpuId::from(3u16)), 3);
        assert_eq!(u32::from(BankId::from(9u32)), 9);
    }

    #[test]
    #[should_panic(expected = "CpuId index out of range")]
    fn cpu_id_overflow_panics() {
        let _ = CpuId::from_index(usize::from(u16::MAX) + 1);
    }

    #[test]
    fn display_and_debug_have_prefixes() {
        assert_eq!(format!("{}", CpuId(2)), "cpu2");
        assert_eq!(format!("{:?}", ClusterId(5)), "cl5");
        assert_eq!(format!("{}", BankId(7)), "bank7");
        assert_eq!(format!("{:?}", PillarId(1)), "pillar1");
        assert_eq!(format!("{}", PacketId(9)), "pkt9");
    }

    #[test]
    fn packet_id_next_increments() {
        assert_eq!(PacketId(4).next(), PacketId(5));
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        assert!(CpuId(1) < CpuId(2));
        let set: HashSet<BankId> = [BankId(1), BankId(1), BankId(2)].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(CpuId::default(), CpuId(0));
        assert_eq!(PacketId::default(), PacketId(0));
    }
}
