//! The router phase: switch allocation and flit traversal for every
//! active router, in node-index order.

use nim_obs::{Category, EventData};
use nim_types::{Coord, Cycle, Dir};

use crate::packet::{Delivered, Flit};
use crate::router::Hold;
use crate::routing::route;

use super::{c3, Candidate, Network};

impl Network {
    pub(super) fn router_phase(&mut self, now: Cycle) {
        if self.dirty.is_empty() {
            return;
        }
        let mut work = std::mem::replace(&mut self.dirty, std::mem::take(&mut self.dirty_scratch));
        work.sort_unstable();
        for &n in &work {
            self.in_dirty[n as usize] = false;
        }
        for &n in &work {
            let n = n as usize;
            if self.routers[n].occupancy == 0 {
                continue;
            }
            self.process_router(n, now);
            if self.routers[n].occupancy > 0 {
                self.mark_dirty(n);
            }
        }
        work.clear();
        self.dirty_scratch = work;
    }

    /// Switch allocation for one router: a single scan over the input VCs
    /// collects every movable head flit (routing each once), then every
    /// output port arbitrates among its candidates in round-robin slot
    /// order. Moves performed while an output is served only ever change
    /// the fronts of inputs recorded in `used_input`, which later outputs
    /// skip, so the pre-collected candidates stay exact.
    fn process_router(&mut self, n: usize, now: Cycle) {
        let vcs = self.vcs;
        let at = self.routers[n].coord;
        let mut cands = std::mem::take(&mut self.cand_scratch);
        debug_assert!(cands.is_empty());
        for (in_dir, input) in self.routers[n].inputs.iter().enumerate() {
            let Some(port) = input else { continue };
            for vc in 0..vcs {
                let Some(front) = port.vc(vc).front(&self.arena) else {
                    continue;
                };
                if front.arrived.0 + self.router_latency > now.0 || !front.kind.is_head() {
                    continue;
                }
                cands.push(Candidate {
                    slot: (in_dir * vcs + vc) as u16,
                    out: route(&self.layout, self.mode, at, front.dst, front.via),
                    flit: *front,
                });
            }
        }
        let mut used_input = [false; Dir::COUNT];
        for out in Dir::ALL {
            if self.routers[n].has_output(out) {
                self.process_output(n, out, now, &mut used_input, &cands);
            }
        }
        cands.clear();
        self.cand_scratch = cands;
    }

    /// Switch allocation and traversal for one output port of one router.
    fn process_output(
        &mut self,
        n: usize,
        out: Dir,
        now: Cycle,
        used_input: &mut [bool; Dir::COUNT],
        cands: &[Candidate],
    ) {
        let oi = out.index();
        // An output already claimed by a packet serves only that packet.
        if let Some(hold) = self.routers[n].held[oi] {
            if used_input[hold.in_dir] {
                return;
            }
            let front = self.routers[n].inputs[hold.in_dir]
                .as_ref()
                .and_then(|p| p.vc(hold.vc).front(&self.arena))
                .copied();
            let Some(front) = front else { return };
            if front.pkt != hold.pkt || front.arrived.0 + self.router_latency > now.0 {
                return;
            }
            if self.try_move(n, hold.in_dir, hold.vc, out, &front, now) {
                used_input[hold.in_dir] = true;
                if front.kind.is_tail() {
                    self.routers[n].held[oi] = None;
                }
            } else {
                self.stats.switch_contention += 1;
            }
            return;
        }
        // Free output: round-robin over head flits requesting it.
        let vcs = self.vcs;
        let total = (Dir::COUNT * vcs) as u16;
        let rrp = self.routers[n].rr[oi];
        let mut winner: Option<Candidate> = None;
        let mut best_rank = u16::MAX;
        let mut eligible = 0u64;
        for c in cands {
            if c.out != out || used_input[usize::from(c.slot) / vcs] {
                continue;
            }
            eligible += 1;
            let rank = (c.slot + total - rrp) % total;
            if rank < best_rank {
                best_rank = rank;
                winner = Some(*c);
            }
        }
        if eligible > 1 {
            self.stats.switch_contention += eligible - 1;
        }
        let Some(c) = winner else {
            return;
        };
        let (in_dir, vc) = (usize::from(c.slot) / vcs, usize::from(c.slot) % vcs);
        if self.try_move(n, in_dir, vc, out, &c.flit, now) {
            used_input[in_dir] = true;
            if !c.flit.kind.is_tail() {
                self.routers[n].held[oi] = Some(Hold {
                    pkt: c.flit.pkt,
                    in_dir,
                    vc,
                });
            }
            self.routers[n].rr[oi] = (c.slot + 1) % total;
        } else {
            self.stats.switch_contention += 1;
        }
    }

    /// Attempts the actual flit traversal. Returns `false` when downstream
    /// has no space or no free VC (speculation failure — retry next cycle).
    fn try_move(
        &mut self,
        n: usize,
        in_dir: usize,
        vc: usize,
        out: Dir,
        front: &Flit,
        now: Cycle,
    ) -> bool {
        match out {
            Dir::Local => {
                let f = self.routers[n].inputs[in_dir]
                    .as_mut()
                    .expect("input exists")
                    .vc_mut(vc)
                    .pop(&self.arena)
                    .expect("front checked");
                self.routers[n].occupancy -= 1;
                self.flits_in_flight -= 1;
                if f.kind.is_tail() {
                    let d = Delivered {
                        packet: f.pkt,
                        src: f.src,
                        dst: f.dst,
                        class: f.class,
                        token: f.token,
                        injected: f.injected,
                        delivered: now,
                        hops: f.hops,
                        bus_wait: f.bus_wait,
                    };
                    self.stats.record_delivery(&d);
                    self.obs
                        .emit(Category::Packet, || EventData::PacketDeliver {
                            packet: d.packet.0,
                            dst: c3(d.dst),
                            latency: d.latency(),
                            hops: u32::from(d.hops),
                        });
                    self.outbox[n].push_back(d);
                    if !self.in_delivered[n] {
                        self.in_delivered[n] = true;
                        self.delivered_nodes.push(n as u32);
                    }
                }
                true
            }
            Dir::Vertical => {
                let bus_idx =
                    self.bus_of_node[n].expect("vertical output on non-pillar node") as usize;
                let layer = self.routers[n].coord.layer;
                if !self.buses[bus_idx].can_enqueue(layer) {
                    return false;
                }
                let mut f = self.routers[n].inputs[in_dir]
                    .as_mut()
                    .expect("input exists")
                    .vc_mut(vc)
                    .pop(&self.arena)
                    .expect("front checked");
                f.arrived = now;
                self.buses[bus_idx].enqueue(&mut self.arena, layer, f);
                self.mark_bus(bus_idx);
                self.routers[n].occupancy -= 1;
                self.stats.flit_hops += 1;
                self.stats.flit_hops_by_class[f.class.index()] += 1;
                self.traversals[n] += 1;
                let at = self.routers[n].coord;
                self.obs.emit(Category::Hop, || EventData::FlitHop {
                    at: c3(at),
                    class: f.class.name(),
                });
                true
            }
            _ => {
                let c = self.routers[n].coord;
                let dest = match out {
                    Dir::Up => Coord::new(c.x, c.y, c.layer + 1),
                    Dir::Down => Coord::new(c.x, c.y, c.layer - 1),
                    d => {
                        let (x, y) = d
                            .step(c.x, c.y, self.layout.width(), self.layout.height())
                            .expect("routing stays on the mesh");
                        Coord::new(x, y, c.layer)
                    }
                };
                let dest_idx = self.layout.node_index(dest);
                debug_assert_ne!(dest_idx, n);
                let ii = out.opposite().index();
                let dvc = {
                    let port = self.routers[dest_idx].inputs[ii]
                        .as_ref()
                        .expect("link implies input port");
                    if front.kind.is_head() {
                        port.free_vc()
                    } else {
                        port.continuation_vc(front.pkt)
                    }
                };
                let Some(dvc) = dvc else {
                    return false;
                };
                let mut f = self.routers[n].inputs[in_dir]
                    .as_mut()
                    .expect("input exists")
                    .vc_mut(vc)
                    .pop(&self.arena)
                    .expect("front checked");
                f.arrived = now;
                f.hops += 1;
                self.routers[dest_idx].inputs[ii]
                    .as_mut()
                    .expect("checked above")
                    .vc_mut(dvc)
                    .push(&mut self.arena, f);
                self.routers[n].occupancy -= 1;
                self.routers[dest_idx].occupancy += 1;
                self.mark_dirty(dest_idx);
                self.stats.flit_hops += 1;
                self.stats.flit_hops_by_class[f.class.index()] += 1;
                self.traversals[n] += 1;
                self.obs.emit(Category::Hop, || EventData::FlitHop {
                    at: c3(c),
                    class: f.class.name(),
                });
                true
            }
        }
    }
}
