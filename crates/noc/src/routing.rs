//! Route computation.
//!
//! The paper uses dimension-order (XY) routing within each layer (Table 4).
//! Inter-layer traversal depends on the vertical interconnect:
//!
//! * **Pillar mode** (the paper's design): route XY to the transaction's
//!   pillar, take the dTDMA bus straight to the destination layer (one
//!   hop), then XY to the destination.
//! * **Mesh3d mode** (the rejected 7-port router, kept as an ablation):
//!   route XY within the layer first, then climb layer by layer over the
//!   `Up`/`Down` ports (XYZ dimension order).
//!
//! Dimension-order routing is deterministic and deadlock-free on a mesh;
//! the pillar detour preserves this because each packet crosses layers at
//! most once, so the channel dependency graph stays acyclic.

use nim_topology::{ChipLayout, RouteMap};
use nim_types::{Coord, Dir, PillarId};

/// How the layers of the stack are interconnected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerticalMode {
    /// dTDMA bus pillars with hybridised 6-port routers (the paper's
    /// proposal).
    Pillars,
    /// Full 3D mesh with 7-port routers (the rejected alternative,
    /// reproduced for the §3.1 design-search ablation).
    Mesh3d,
}

/// XY dimension-order step within a layer; `Local` when already there.
#[inline]
pub(crate) fn xy_toward(at: Coord, dst_x: u8, dst_y: u8) -> Dir {
    if at.x < dst_x {
        Dir::East
    } else if at.x > dst_x {
        Dir::West
    } else if at.y < dst_y {
        Dir::North
    } else if at.y > dst_y {
        Dir::South
    } else {
        Dir::Local
    }
}

/// Output port for a flit standing at `at`, heading for `dst`, riding
/// pillar `via` for any layer change. Unpinned cross-layer routes fall
/// back to the precomputed nearest-pillar table (`routes`), which is
/// decision-identical to the layout's linear scan.
///
/// # Panics
///
/// Panics if a cross-layer route is requested in pillar mode on a chip
/// with no pillars.
pub(crate) fn route(
    layout: &ChipLayout,
    routes: &RouteMap,
    mode: VerticalMode,
    at: Coord,
    dst: Coord,
    via: Option<PillarId>,
) -> Dir {
    match mode {
        VerticalMode::Pillars => {
            if at.layer == dst.layer {
                xy_toward(at, dst.x, dst.y)
            } else {
                let pillar = via
                    .or_else(|| routes.nearest_pillar(at))
                    .expect("cross-layer route requires a pillar");
                let (px, py) = layout.pillar_xy(pillar);
                if (at.x, at.y) == (px, py) {
                    Dir::Vertical
                } else {
                    xy_toward(at, px, py)
                }
            }
        }
        VerticalMode::Mesh3d => {
            let step = xy_toward(at, dst.x, dst.y);
            if step != Dir::Local {
                step
            } else if at.layer < dst.layer {
                Dir::Up
            } else if at.layer > dst.layer {
                Dir::Down
            } else {
                Dir::Local
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nim_types::SystemConfig;

    fn layout() -> ChipLayout {
        ChipLayout::new(&SystemConfig::default()).unwrap()
    }

    fn route(
        layout: &ChipLayout,
        mode: VerticalMode,
        at: Coord,
        dst: Coord,
        via: Option<PillarId>,
    ) -> Dir {
        super::route(layout, &RouteMap::new(layout), mode, at, dst, via)
    }

    #[test]
    fn xy_resolves_x_before_y() {
        let at = Coord::new(2, 2, 0);
        assert_eq!(xy_toward(at, 5, 0), Dir::East);
        assert_eq!(xy_toward(at, 0, 5), Dir::West);
        assert_eq!(xy_toward(at, 2, 5), Dir::North);
        assert_eq!(xy_toward(at, 2, 0), Dir::South);
        assert_eq!(xy_toward(at, 2, 2), Dir::Local);
    }

    #[test]
    fn same_layer_route_is_pure_xy() {
        let l = layout();
        let d = route(
            &l,
            VerticalMode::Pillars,
            Coord::new(0, 0, 0),
            Coord::new(3, 1, 0),
            None,
        );
        assert_eq!(d, Dir::East);
    }

    #[test]
    fn cross_layer_route_heads_for_the_pillar_then_vertical() {
        let l = layout();
        let p = PillarId(0);
        let (px, py) = l.pillar_xy(p);
        let dst = Coord::new(0, 0, 1);
        // Standing on the pillar: go vertical.
        let at = Coord::new(px, py, 0);
        assert_eq!(
            route(&l, VerticalMode::Pillars, at, dst, Some(p)),
            Dir::Vertical
        );
        // One hop west of the pillar: go east towards it, even though the
        // final destination is west.
        let at = Coord::new(px - 1, py, 0);
        assert_eq!(
            route(&l, VerticalMode::Pillars, at, dst, Some(p)),
            Dir::East
        );
    }

    #[test]
    fn after_the_bus_routing_is_plain_xy_on_the_target_layer() {
        let l = layout();
        let p = PillarId(0);
        let (px, py) = l.pillar_xy(p);
        let at = Coord::new(px, py, 1); // just got off the bus on layer 1
        let dst = Coord::new(0, 0, 1);
        assert_eq!(
            route(&l, VerticalMode::Pillars, at, dst, Some(p)),
            Dir::West
        );
    }

    #[test]
    fn mesh3d_routes_xy_then_z() {
        let l = layout();
        let dst = Coord::new(3, 3, 1);
        assert_eq!(
            route(&l, VerticalMode::Mesh3d, Coord::new(0, 3, 0), dst, None),
            Dir::East
        );
        assert_eq!(
            route(&l, VerticalMode::Mesh3d, Coord::new(3, 3, 0), dst, None),
            Dir::Up
        );
        assert_eq!(
            route(&l, VerticalMode::Mesh3d, Coord::new(3, 3, 1), dst, None),
            Dir::Local
        );
    }

    #[test]
    fn arrival_routes_local() {
        let l = layout();
        let c = Coord::new(4, 4, 1);
        assert_eq!(route(&l, VerticalMode::Pillars, c, c, None), Dir::Local);
    }
}
