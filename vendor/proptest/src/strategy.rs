//! Value-generation strategies.

use crate::test_runner::{Rejection, TestRng};

/// A recipe for generating values of one type.
///
/// Combinator methods carry `where Self: Sized` so the trait stays
/// object-safe and `Box<dyn Strategy<Value = T>>` works.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value, or a [`Rejection`] (e.g. a failed filter)
    /// telling the runner to discard and retry the whole case.
    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards values failing `pred` (the case is retried).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Result<O, Rejection> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
        // Retry locally a few times before rejecting the whole case, so
        // selective filters do not starve the runner.
        for _ in 0..16 {
            let v = self.inner.generate(rng)?;
            if (self.pred)(&v) {
                return Ok(v);
            }
        }
        Err(Rejection(self.whence))
    }
}

/// Uniform choice among same-typed strategies (see `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Uniform values of `T` over its whole domain (with edge-case bias).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// See [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(core::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(T::arbitrary(rng))
    }
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias 1-in-8 draws toward the edges where bugs live.
                if rng.below(8) == 0 {
                    match rng.below(3) {
                        0 => 0,
                        1 => 1,
                        _ => <$t>::MAX,
                    }
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.below(2) == 1
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                let off = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                Ok(self.start + off as $t)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128) - (start as u128) + 1;
                let off = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                Ok(start + off as $t)
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> Result<f64, Rejection> {
        assert!(self.start < self.end, "empty range strategy");
        Ok(self.start + rng.unit_f64() * (self.end - self.start))
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
                let ($($name,)+) = self;
                Ok(($($name.generate(rng)?,)+))
            }
        }
    };
}

impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);
impl_strategy_tuple!(A, B, C, D, E, F, G);
impl_strategy_tuple!(A, B, C, D, E, F, G, H);
impl_strategy_tuple!(A, B, C, D, E, F, G, H, I);
impl_strategy_tuple!(A, B, C, D, E, F, G, H, I, J);
