//! Figure 15 — IPC under the four schemes (the same runs as Figure 13;
//! IPC is read from the core counters of each report).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nim_bench::scale_from_env;
use nim_core::experiments::fig15_ipc;
use nim_core::Scheme;
use nim_workload::BenchmarkProfile;

fn bench(c: &mut Criterion) {
    let scale = scale_from_env(true);
    let bench_set = [BenchmarkProfile::mgrid()];
    let mut group = c.benchmark_group("fig15");
    group.sample_size(10);
    group.bench_function("mgrid_ipc", |b| {
        b.iter(|| black_box(fig15_ipc(&bench_set, scale).expect("runs complete")))
    });
    group.finish();
    for row in fig15_ipc(&bench_set, scale).expect("runs complete") {
        let base = row.report(Scheme::CmpDnuca2d).ipc();
        for scheme in Scheme::ALL {
            let ipc = row.report(scheme).ipc();
            eprintln!(
                "fig15: {:<6} {:<14} IPC = {:.4}  ({:+.1}% vs CMP-DNUCA-2D)",
                row.benchmark,
                scheme.label(),
                ipc,
                (ipc / base - 1.0) * 100.0
            );
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
