//! Shared plumbing for the benchmark harness that regenerates every table
//! and figure of the paper's evaluation.
//!
//! * `cargo run --release -p nim-bench --bin tables` — Tables 1–3.
//! * `cargo run --release -p nim-bench --bin figures` — Figures 13–18.
//! * `cargo bench -p nim-bench` — Criterion benchmarks, one per exhibit.
//!
//! The experiment scale is controlled by the `NIM_SCALE` environment
//! variable: `quick` (default for Criterion), or `full` (the scale the
//! shipped EXPERIMENTS.md numbers were produced at).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nim_core::experiments::ExperimentScale;
use nim_workload::BenchmarkProfile;

/// Reads the experiment scale from `NIM_SCALE` (`quick` or `full`).
pub fn scale_from_env(default_quick: bool) -> ExperimentScale {
    match std::env::var("NIM_SCALE").as_deref() {
        Ok("full") => ExperimentScale::default(),
        Ok("quick") => ExperimentScale::quick(),
        _ if default_quick => ExperimentScale::quick(),
        _ => ExperimentScale::default(),
    }
}

/// The four representative benchmarks of Figures 16–18 (art and galgel
/// with low L1 miss rates, mgrid and swim with high ones — paper §5.2).
pub fn representative_benchmarks() -> Vec<BenchmarkProfile> {
    ["art", "galgel", "mgrid", "swim"]
        .iter()
        .map(|n| BenchmarkProfile::by_name(n).expect("known benchmark"))
        .collect()
}

/// Renders one formatted table cell for a latency value.
pub fn fmt_cy(v: f64) -> String {
    format!("{v:>8.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_set_matches_the_paper() {
        let names: Vec<_> = representative_benchmarks().iter().map(|b| b.name).collect();
        assert_eq!(names, ["art", "galgel", "mgrid", "swim"]);
    }

    #[test]
    fn scale_default_respects_flag() {
        // No env var set in tests: the flag picks the default.
        if std::env::var("NIM_SCALE").is_err() {
            assert_eq!(scale_from_env(true), ExperimentScale::quick());
            assert_eq!(scale_from_env(false), ExperimentScale::default());
        }
    }
}
