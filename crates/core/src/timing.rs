//! Contention-aware latency models for the chip's shared resources.
//!
//! Each model owns the busy-until bookkeeping for one resource class —
//! tag arrays, SRAM data banks, DRAM channels — and answers a single
//! question: *if a request claims the resource now, how many cycles
//! until it completes?* Claiming advances the resource's schedule, so
//! back-to-back requests queue exactly like the god-object's old inline
//! `tag_busy`/`bank_busy`/`mc_ready` vectors did. The models know
//! nothing about transactions or the network; [`SimFabric`] wires them
//! into the simulation and the protocol engine reaches them only
//! through the [`Fabric`] trait.
//!
//! [`SimFabric`]: crate::fabric::SimFabric
//! [`Fabric`]: crate::fabric::Fabric

use nim_types::codec::{ByteReader, ByteWriter, Checkpoint, CodecError};
use nim_types::{ClusterId, Cycle};

/// Restores one busy-until style table in place, validating that the
/// snapshot was taken on a same-shaped resource.
fn restore_table(
    dst: &mut Vec<u64>,
    r: &mut ByteReader<'_>,
    what: &'static str,
) -> Result<(), CodecError> {
    let v = r.u64_vec()?;
    if v.len() != dst.len() {
        return Err(CodecError::Corrupt(what));
    }
    *dst = v;
    Ok(())
}

/// Cycles between successive probe initiations at one (pipelined) tag
/// array — concurrent searches crowding a cluster's tag array queue up.
pub(crate) const TAG_INITIATION: u64 = 2;

/// A claimed resource's delay, split into the cycles spent queueing
/// behind earlier claimants and the cycles of actual service. The split
/// feeds latency attribution ([`crate::txn::Phase`]); timing-wise only
/// [`ClaimedDelay::total`] matters, and it equals what `claim` returned
/// before the split existed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClaimedDelay {
    /// Cycles waiting for the resource's slot (serialization queueing).
    pub queue: u64,
    /// Cycles of service once the slot is held.
    pub service: u64,
}

impl ClaimedDelay {
    /// A zero delay (e.g. a tag check the oracle skips).
    pub const NONE: ClaimedDelay = ClaimedDelay {
        queue: 0,
        service: 0,
    };

    /// Total cycles until the claimed operation completes.
    pub fn total(self) -> u64 {
        self.queue + self.service
    }
}

/// The per-cluster tag arrays (paper §4.1): pipelined lookups that
/// accept one new probe every [`TAG_INITIATION`] cycles.
#[derive(Clone, Debug)]
pub(crate) struct TagArrays {
    /// Cycle until which each cluster's issue slot is occupied.
    busy: Vec<u64>,
    /// Lookup latency once a probe is issued.
    latency: u64,
}

impl TagArrays {
    pub(crate) fn new(clusters: usize, latency: u64) -> Self {
        Self {
            busy: vec![0; clusters],
            latency,
        }
    }

    /// Latency until a tag probe of `cluster` completes, occupying the
    /// array's issue slot, split into queue wait and lookup service.
    pub(crate) fn claim(&mut self, cluster: ClusterId, now: Cycle) -> ClaimedDelay {
        let slot = &mut self.busy[cluster.index()];
        let start = (*slot).max(now.0);
        *slot = start + TAG_INITIATION;
        ClaimedDelay {
            queue: start - now.0,
            service: self.latency,
        }
    }
}

impl Checkpoint for TagArrays {
    fn save(&self, w: &mut ByteWriter) {
        w.u64_slice(&self.busy);
    }

    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        restore_table(&mut self.busy, r, "tag array count mismatch")
    }
}

/// The SRAM data banks: one access at a time, node-indexed. Also keeps
/// the per-bank access census that drives activity-based power and
/// thermal analysis.
#[derive(Clone, Debug)]
pub(crate) struct Banks {
    /// Cycle until which each bank is occupied.
    busy: Vec<u64>,
    /// Accesses performed by each bank (node-indexed).
    access_counts: Vec<u64>,
    /// Single-access latency.
    latency: u64,
}

impl Banks {
    pub(crate) fn new(nodes: usize, latency: u64) -> Self {
        Self {
            busy: vec![0; nodes],
            access_counts: vec![0; nodes],
            latency,
        }
    }

    /// Latency until an access of bank `node` completes, counting the
    /// access; the bank performs one access at a time, so a busy bank
    /// adds queue cycles before its fixed-service access.
    pub(crate) fn claim(&mut self, node: usize, now: Cycle) -> ClaimedDelay {
        self.access_counts[node] += 1;
        let slot = &mut self.busy[node];
        let start = (*slot).max(now.0);
        *slot = start + self.latency;
        ClaimedDelay {
            queue: start - now.0,
            service: self.latency,
        }
    }

    /// Accesses each bank performed so far, indexed like
    /// [`ChipLayout::node_index`](nim_topology::ChipLayout::node_index).
    pub(crate) fn access_counts(&self) -> &[u64] {
        &self.access_counts
    }
}

impl Checkpoint for Banks {
    fn save(&self, w: &mut ByteWriter) {
        w.u64_slice(&self.busy);
        w.u64_slice(&self.access_counts);
    }

    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        restore_table(&mut self.busy, r, "bank count mismatch")?;
        restore_table(&mut self.access_counts, r, "bank census count mismatch")
    }
}

/// The memory controllers' DRAM channels: each accepts a new request
/// every `interval` cycles (channel bandwidth) and answers `latency`
/// cycles after the request is accepted.
#[derive(Clone, Debug)]
pub(crate) struct MemoryChannels {
    /// Earliest cycle each controller can accept its next request.
    ready: Vec<u64>,
    /// Minimum spacing between accepted requests.
    interval: u64,
    /// DRAM access latency once accepted.
    latency: u64,
}

impl MemoryChannels {
    pub(crate) fn new(controllers: usize, interval: u64, latency: u64) -> Self {
        Self {
            ready: vec![0; controllers],
            interval,
            latency,
        }
    }

    /// Latency until controller `mc` finishes a DRAM access claimed
    /// now, queueing behind the channel's bandwidth limit.
    pub(crate) fn claim(&mut self, mc: usize, now: Cycle) -> ClaimedDelay {
        let start = self.ready[mc].max(now.0);
        self.ready[mc] = start + self.interval;
        ClaimedDelay {
            queue: start - now.0,
            service: self.latency,
        }
    }
}

impl Checkpoint for MemoryChannels {
    fn save(&self, w: &mut ByteWriter) {
        w.u64_slice(&self.ready);
    }

    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        restore_table(&mut self.ready, r, "memory controller count mismatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delay(queue: u64, service: u64) -> ClaimedDelay {
        ClaimedDelay { queue, service }
    }

    #[test]
    fn tag_arrays_pipeline_at_the_initiation_interval() {
        let mut tags = TagArrays::new(4, 8);
        let now = Cycle(100);
        // An idle array answers after the bare lookup latency.
        assert_eq!(tags.claim(ClusterId(0), now), delay(0, 8));
        // The next probe in the same cycle waits one initiation slot;
        // the wait is queueing, the lookup itself stays 8 cycles.
        assert_eq!(tags.claim(ClusterId(0), now), delay(TAG_INITIATION, 8));
        assert_eq!(tags.claim(ClusterId(0), now), delay(2 * TAG_INITIATION, 8));
        assert_eq!(
            tags.claim(ClusterId(0), now).total(),
            2 * TAG_INITIATION + 8 + TAG_INITIATION
        );
        // A different cluster's array is unaffected.
        assert_eq!(tags.claim(ClusterId(1), now), delay(0, 8));
    }

    #[test]
    fn banks_serialise_accesses_and_count_them() {
        let mut banks = Banks::new(2, 5);
        let now = Cycle(0);
        assert_eq!(banks.claim(0, now), delay(0, 5));
        assert_eq!(banks.claim(0, now), delay(5, 5));
        assert_eq!(banks.claim(1, now), delay(0, 5));
        assert_eq!(banks.access_counts(), &[2, 1]);
        // After the backlog drains the bank answers at full speed again.
        assert_eq!(banks.claim(0, Cycle(10)), delay(0, 5));
    }

    #[test]
    fn checkpoints_restore_schedules_and_reject_shape_mismatches() {
        let mut banks = Banks::new(2, 5);
        banks.claim(0, Cycle(0));
        banks.claim(0, Cycle(0));
        banks.claim(1, Cycle(3));
        let mut w = ByteWriter::new();
        banks.save(&mut w);
        let bytes = w.into_bytes();
        let mut restored = Banks::new(2, 5);
        restored.restore(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(restored.busy, banks.busy);
        assert_eq!(restored.access_counts(), banks.access_counts());
        // A same-cycle claim on the restored banks queues identically.
        assert_eq!(restored.claim(0, Cycle(0)), banks.claim(0, Cycle(0)));
        let mut wrong = Banks::new(3, 5);
        assert!(wrong.restore(&mut ByteReader::new(&bytes)).is_err());

        let mut tags = TagArrays::new(4, 8);
        tags.claim(ClusterId(2), Cycle(7));
        let mut w = ByteWriter::new();
        tags.save(&mut w);
        let mut restored = TagArrays::new(4, 8);
        restored
            .restore(&mut ByteReader::new(&w.into_bytes()))
            .unwrap();
        assert_eq!(restored.busy, tags.busy);

        let mut mem = MemoryChannels::new(2, 16, 260);
        mem.claim(1, Cycle(0));
        let mut w = ByteWriter::new();
        mem.save(&mut w);
        let mut restored = MemoryChannels::new(2, 16, 260);
        restored
            .restore(&mut ByteReader::new(&w.into_bytes()))
            .unwrap();
        assert_eq!(restored.ready, mem.ready);
    }

    #[test]
    fn memory_channels_honour_the_bandwidth_interval() {
        let mut mem = MemoryChannels::new(2, 16, 260);
        let now = Cycle(0);
        assert_eq!(mem.claim(0, now), delay(0, 260));
        // Queued behind the channel's 16-cycle acceptance interval.
        assert_eq!(mem.claim(0, now), delay(16, 260));
        assert_eq!(mem.claim(0, now), delay(32, 260));
        // The second controller has its own channel.
        assert_eq!(mem.claim(1, now), delay(0, 260));
    }
}
