//! The shard-range execution view.
//!
//! [`Lane`] borrows exactly the state the router and injection phases of
//! a contiguous *range of shards* may touch — their
//! [`ShardState`](super::ShardState)s plus the node-indexed slices
//! (routers, injectors, mark flags, traversal counters) restricted to
//! the range's contiguous node span. The sequential tick runs one
//! whole-chip lane (every shard; cross-shard mesh hops move a flit
//! between two shard arenas in-place), while the window executor runs
//! one single-shard lane per shard, where a cross-shard hop is a
//! planner bug. Both run the *same* phase code through a `Lane`; only
//! the [`DeliverySink`] differs:
//!
//! * [`LiveSink`] — the sequential tick's sink. Performs delivery
//!   bookkeeping and emits trace events immediately through the (thread
//!   -bound) [`Obs`] handle.
//! * [`WindowSink`] — the window executor's sink. Defers `FlitHop`
//!   events into a per-shard buffer for deterministic replay at the
//!   barrier, and treats a delivery as a bug: the window planner proved
//!   no flit can reach a local port inside the window.
//!
//! Statistics counters that outlive a phase (`flit_hops`,
//! `switch_contention`, …) accumulate on the `Lane` itself and are
//! folded into [`NetworkStats`] when the lane retires, so threaded
//! lanes never contend on shared counters.

use std::collections::VecDeque;

use nim_obs::{Category, EventData, Obs};
use nim_topology::{ChipLayout, RouteMap};
use nim_types::{Coord, Cycle};

use crate::packet::{Delivered, Flit};
use crate::routing::VerticalMode;
use crate::stats::NetworkStats;

use super::{c3, IfaceSlot, Injector, Network, ShardState};

/// A `FlitHop` event deferred by a window lane: (cycle, position,
/// traffic-class name).
pub(super) type DeferredHop = (u64, [u16; 3], &'static str);

/// Where a lane's router phase reports flits that left the network: a
/// flit ejected at a local port, or a router-to-router hop to trace.
pub(super) trait DeliverySink {
    /// A flit was popped at node `node`'s local port at time `now`.
    fn local_pop(&mut self, node: usize, flit: Flit, now: Cycle);
    /// A flit traversed router `at` (mesh hop or vertical enqueue).
    fn flit_hop(&mut self, now: Cycle, at: Coord, class: &'static str);
}

/// The sequential tick's sink: full delivery bookkeeping plus immediate
/// trace emission. Holds the non-`Send` [`Obs`] handle, so it only ever
/// exists on the simulation thread.
pub(super) struct LiveSink<'a> {
    pub obs: &'a Obs,
    pub outbox: &'a mut [VecDeque<Delivered>],
    pub in_delivered: &'a mut [bool],
    pub delivered_nodes: &'a mut Vec<u32>,
    pub flits_in_flight: &'a mut u64,
    pub stats: &'a mut NetworkStats,
}

impl DeliverySink for LiveSink<'_> {
    fn local_pop(&mut self, node: usize, f: Flit, now: Cycle) {
        *self.flits_in_flight -= 1;
        if f.kind.is_tail() {
            let d = Delivered {
                packet: f.pkt,
                src: f.src,
                dst: f.dst,
                class: f.class,
                token: f.token,
                injected: f.injected,
                delivered: now,
                hops: f.hops,
                bus_wait: f.bus_wait,
            };
            self.stats.record_delivery(&d);
            self.obs
                .emit(Category::Packet, || EventData::PacketDeliver {
                    packet: d.packet.0,
                    dst: c3(d.dst),
                    latency: d.latency(),
                    hops: u32::from(d.hops),
                });
            self.outbox[node].push_back(d);
            if !self.in_delivered[node] {
                self.in_delivered[node] = true;
                self.delivered_nodes.push(node as u32);
            }
        }
    }

    fn flit_hop(&mut self, _now: Cycle, at: Coord, class: &'static str) {
        self.obs
            .emit(Category::Hop, || EventData::FlitHop { at: c3(at), class });
    }
}

/// A window lane's sink: `Send`, defers hops, and rejects deliveries
/// (the conservative horizon guarantees none can occur in-window).
pub(super) struct WindowSink {
    pub hops: Vec<DeferredHop>,
    /// Whether hop events are wanted at all; when the trace category is
    /// off, deferring them would only burn memory.
    pub record: bool,
}

impl DeliverySink for WindowSink {
    fn local_pop(&mut self, node: usize, f: Flit, now: Cycle) {
        unreachable!(
            "packet {} delivered at node {node} in cycle {} inside a \
             conservative shard window — the horizon planner under-estimated",
            f.pkt.0, now.0
        );
    }

    fn flit_hop(&mut self, now: Cycle, at: Coord, class: &'static str) {
        if self.record {
            self.hops.push((now.0, c3(at), class));
        }
    }
}

/// A shard range's mutable working set: everything its router and
/// injection phases may read or write. Node-indexed borrows are sliced
/// to the range's contiguous `[base, base + len)` node span; methods
/// take *global* node ids and translate.
///
/// The sequential tick uses one whole-chip lane (`shards` = every
/// shard): a mesh hop across a shard boundary pops from the source
/// shard's arena and pushes into the destination's, which the disjoint
/// `routers`/`shards` borrows express directly. Window lanes hold
/// exactly one shard, making any cross-shard hop a planner bug caught
/// at the hop site.
pub(super) struct Lane<'a> {
    /// Global node id of the range's first node.
    pub base: usize,
    /// Shard index (network-global) of `shards[0]`.
    pub first_shard: usize,
    /// Nodes per shard: shards are node-contiguous, so
    /// `node / nodes_per_shard - first_shard` locates a node's shard in
    /// `shards`.
    pub nodes_per_shard: usize,
    pub shards: &'a mut [ShardState],
    pub routers: &'a mut [crate::router::Router],
    pub injectors: &'a mut [Injector],
    pub in_dirty: &'a mut [bool],
    pub in_inj: &'a mut [bool],
    pub traversals: &'a mut [u64],
    pub layout: &'a ChipLayout,
    pub routes: &'a RouteMap,
    pub mode: VerticalMode,
    pub vcs: usize,
    pub router_latency: u64,
    pub bus_of_node: &'a [Option<u16>],
    /// Transceiver-interface locations, indexed `bus * layers + layer`.
    pub iface_slots: &'a [IfaceSlot],
    /// Counters folded into [`NetworkStats`] when the lane retires.
    pub flit_hops: u64,
    pub flit_hops_by_class: [u64; 4],
    pub switch_contention: u64,
}

impl Lane<'_> {
    /// Index into `self.shards` of the shard owning a global node id.
    #[inline]
    pub(super) fn shard_ix(&self, node: usize) -> usize {
        node / self.nodes_per_shard - self.first_shard
    }

    #[inline]
    pub(super) fn mark_dirty(&mut self, node: usize) {
        let local = node - self.base;
        if !self.in_dirty[local] {
            self.in_dirty[local] = true;
            let s = self.shard_ix(node);
            self.shards[s].dirty.push(node as u32);
        }
    }

    #[inline]
    pub(super) fn mark_inj(&mut self, node: usize) {
        let local = node - self.base;
        if !self.in_inj[local] {
            self.in_inj[local] = true;
            let s = self.shard_ix(node);
            self.shards[s].inj_active.push(node as u32);
        }
    }

    /// The earliest cycle `>= after` at which a router or injection
    /// phase of this lane's shards could change state, or `u64::MAX`
    /// when they are quiescent. The shard-local analogue of
    /// [`Network::next_event_at`](super::Network::next_event_at): cycles
    /// strictly before the result are provably dead *for these shards*.
    pub(super) fn next_local_event(&self, after: u64) -> u64 {
        let mut earliest = u64::MAX;
        for st in self.shards.iter() {
            if !st.inj_active.is_empty() {
                earliest = after;
            }
            for &n in &st.dirty {
                let r = &self.routers[n as usize - self.base];
                if r.occupancy == 0 {
                    continue;
                }
                for port in r.inputs.iter().flatten() {
                    for vc in 0..self.vcs {
                        if let Some(f) = port.vc(vc).front(&st.arena) {
                            earliest = earliest.min((f.arrived.0 + self.router_latency).max(after));
                        }
                    }
                }
            }
        }
        earliest
    }

    /// Runs this lane's router and injection phases for every cycle in
    /// `[from, to]`, skipping spans where the shards are provably dead.
    /// Bit-identical to ticking cycle by cycle: a skipped cycle has no
    /// movable flit and nothing to inject, so its phases would not have
    /// mutated anything.
    pub(super) fn run_window(&mut self, from: u64, to: u64, sink: &mut impl DeliverySink) {
        let mut t = from;
        while t <= to {
            let event = self.next_local_event(t);
            if event > to {
                return;
            }
            t = event;
            let now = Cycle(t);
            self.router_phase(now, sink);
            self.injection_phase(now);
            t += 1;
        }
    }
}

impl Network {
    /// Splits `self` into the whole-chip [`Lane`] plus the [`LiveSink`]
    /// holding the network-global delivery state — the sequential tick's
    /// working set, built on the stack with no allocation.
    pub(super) fn live_parts(&mut self) -> (Lane<'_>, LiveSink<'_>) {
        let Network {
            shards,
            routers,
            injectors,
            in_dirty,
            in_inj,
            traversals,
            outbox,
            in_delivered,
            delivered_nodes,
            flits_in_flight,
            stats,
            obs,
            layout,
            routes,
            mode,
            vcs,
            router_latency,
            bus_of_node,
            iface_slots,
            nodes_per_shard,
            ..
        } = self;
        let lane = Lane {
            base: 0,
            first_shard: 0,
            nodes_per_shard: *nodes_per_shard,
            shards,
            routers,
            injectors,
            in_dirty,
            in_inj,
            traversals,
            layout,
            routes,
            mode: *mode,
            vcs: *vcs,
            router_latency: *router_latency,
            bus_of_node,
            iface_slots,
            flit_hops: 0,
            flit_hops_by_class: [0; 4],
            switch_contention: 0,
        };
        let sink = LiveSink {
            obs,
            outbox,
            in_delivered,
            delivered_nodes,
            flits_in_flight,
            stats,
        };
        (lane, sink)
    }

    /// Folds a retired lane's counters into the global statistics.
    pub(super) fn fold_lane(&mut self, flit_hops: u64, by_class: [u64; 4], contention: u64) {
        self.stats.flit_hops += flit_hops;
        for (total, add) in self.stats.flit_hops_by_class.iter_mut().zip(by_class) {
            *total += add;
        }
        self.stats.switch_contention += contention;
    }
}
