//! Behavioural tests of the dTDMA pillar bus: work-conserving dynamic
//! slot allocation (= round-robin fairness among active clients) and
//! single-hop transfer between arbitrary layer pairs.

use nim_noc::{Network, SendRequest, TrafficClass, VerticalMode};
use nim_topology::ChipLayout;
use nim_types::{Coord, PillarId, SystemConfig};

fn four_layer_net() -> (ChipLayout, Network) {
    let cfg = SystemConfig::default().with_layers(4);
    let layout = ChipLayout::new(&cfg).unwrap();
    let net = Network::new(&layout, &cfg.network, VerticalMode::Pillars);
    (layout, net)
}

#[test]
fn any_layer_pair_is_one_bus_hop() {
    let (layout, mut net) = four_layer_net();
    let p = PillarId(0);
    let (px, py) = layout.pillar_xy(p);
    let mut token = 0;
    for from in 0..4u8 {
        for to in 0..4u8 {
            if from == to {
                continue;
            }
            net.send(SendRequest {
                src: Coord::new(px, py, from),
                dst: Coord::new(px, py, to),
                via: Some(p),
                class: TrafficClass::Control,
                flits: 1,
                token,
            });
            token += 1;
            net.run_until_idle(1_000).expect("drains");
        }
    }
    for d in net.drain_delivered() {
        assert_eq!(
            d.hops, 1,
            "layer {} -> {} took {} hops; the bus is single-hop",
            d.src.layer, d.dst.layer, d.hops
        );
    }
}

#[test]
fn saturated_bus_shares_slots_fairly() {
    // Two transmitters on different layers both stream packets through
    // one pillar; dynamic TDMA must serve them near-equally.
    let (layout, mut net) = four_layer_net();
    let p = PillarId(0);
    let (px, py) = layout.pillar_xy(p);
    let n = 40u64;
    for i in 0..n {
        net.send(SendRequest {
            src: Coord::new(px, py, 0),
            dst: Coord::new(px, py, 2),
            via: Some(p),
            class: TrafficClass::Data,
            flits: 4,
            token: i,
        });
        net.send(SendRequest {
            src: Coord::new(px, py, 1),
            dst: Coord::new(px, py, 3),
            via: Some(p),
            class: TrafficClass::Data,
            flits: 4,
            token: 1_000 + i,
        });
    }
    net.run_until_idle(100_000).expect("drains");
    let mut latency = [0.0f64; 2];
    let mut count = [0u32; 2];
    for d in net.drain_delivered() {
        let side = usize::from(d.token >= 1_000);
        latency[side] += d.latency() as f64;
        count[side] += 1;
    }
    assert_eq!(count, [n as u32, n as u32], "everything delivered");
    let (a, b) = (
        latency[0] / f64::from(count[0]),
        latency[1] / f64::from(count[1]),
    );
    let ratio = a.max(b) / a.min(b);
    assert!(
        ratio < 1.25,
        "round-robin must serve both streams near-equally: {a:.1} vs {b:.1}"
    );
    assert!(
        net.bus_stats()[0].contention_cycles > 0,
        "the bus must actually have been contended"
    );
}

#[test]
fn narrow_buses_serialise_each_flit() {
    // Halving the bus width (a tighter via budget, Table 2) doubles the
    // cycles each flit occupies the pillar.
    let run = |bus_width: u32| {
        let mut cfg = SystemConfig::default();
        cfg.network.bus_width_bits = bus_width;
        let layout = ChipLayout::new(&cfg).unwrap();
        let mut net = Network::new(&layout, &cfg.network, VerticalMode::Pillars);
        let p = PillarId(0);
        let (px, py) = layout.pillar_xy(p);
        for i in 0..10u64 {
            net.send(SendRequest {
                src: Coord::new(px, py, 0),
                dst: Coord::new(px, py, 1),
                via: Some(p),
                class: TrafficClass::Data,
                flits: 4,
                token: i,
            });
        }
        net.run_until_idle(10_000).expect("drains");
        let stats = net.bus_stats()[0];
        (net.now().0, stats.busy_cycles)
    };
    let (full_cycles, full_busy) = run(128);
    let (half_cycles, half_busy) = run(64);
    assert!(
        half_cycles > full_cycles + 30,
        "a half-width bus must take noticeably longer: {full_cycles} vs {half_cycles}"
    );
    assert_eq!(
        half_busy,
        2 * full_busy,
        "each flit holds the bus twice as long"
    );
}

#[test]
fn bus_is_work_conserving() {
    // A single active transmitter gets every slot: n 1-flit packets
    // cross in ~n consecutive bus cycles (plus pipeline fill).
    let (layout, mut net) = four_layer_net();
    let p = PillarId(2);
    let (px, py) = layout.pillar_xy(p);
    let n = 30u64;
    for i in 0..n {
        net.send(SendRequest {
            src: Coord::new(px, py, 0),
            dst: Coord::new(px, py, 1),
            via: Some(p),
            class: TrafficClass::Control,
            flits: 1,
            token: i,
        });
    }
    let cycles = net.run_until_idle(10_000).expect("drains");
    assert!(
        cycles <= 3 * n + 10,
        "one flit per cycle when alone on the bus: {n} packets took {cycles} cycles"
    );
    assert_eq!(net.bus_stats()[p.index()].transfers, n);
}
