//! End-to-end integration tests: build every scheme, run real workloads
//! through the full stack (cores + L1 + directory + NUCA L2 + 3D NoC),
//! and check the paper's structural claims.

use network_in_memory::core::{Scheme, SystemBuilder};
use network_in_memory::workload::BenchmarkProfile;

fn quick(scheme: Scheme) -> SystemBuilder {
    SystemBuilder::new(scheme)
        .seed(42)
        .warmup_transactions(150)
        .sampled_transactions(1_200)
}

#[test]
fn every_scheme_completes_and_reports_sane_metrics() {
    let bench = BenchmarkProfile::synthetic();
    for scheme in Scheme::ALL {
        let report = quick(scheme).build().unwrap().run(&bench).unwrap();
        assert_eq!(report.scheme, scheme);
        // Warm-up and stop boundaries are detected once per cycle, and
        // several transactions can complete within one cycle, so the
        // window can be off by a few either way.
        let window = report.counters.l2_transactions;
        assert!(
            (1_190..=1_210).contains(&window),
            "{scheme}: window {window}"
        );
        let lat = report.avg_l2_hit_latency();
        assert!((5.0..250.0).contains(&lat), "{scheme}: latency {lat}");
        let ipc = report.ipc();
        assert!(ipc > 0.0 && ipc <= 1.0, "{scheme}: ipc {ipc}");
        assert!(
            report.l2_miss_rate() < 0.5,
            "{scheme}: warm L2 misses a lot"
        );
        assert!(report.cycles > 0 && report.instructions > 0);
    }
}

#[test]
fn runs_are_deterministic_per_seed() {
    let bench = BenchmarkProfile::swim();
    let a = quick(Scheme::CmpDnuca3d)
        .build()
        .unwrap()
        .run(&bench)
        .unwrap();
    let b = quick(Scheme::CmpDnuca3d)
        .build()
        .unwrap()
        .run(&bench)
        .unwrap();
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instructions, b.instructions);
    let c = quick(Scheme::CmpDnuca3d)
        .seed(43)
        .build()
        .unwrap()
        .run(&bench)
        .unwrap();
    assert_ne!(a.counters, c.counters, "different seed, different run");
}

#[test]
fn snuca_never_migrates_dnuca_does() {
    let bench = BenchmarkProfile::mgrid();
    let snuca = quick(Scheme::CmpSnuca3d)
        .build()
        .unwrap()
        .run(&bench)
        .unwrap();
    assert_eq!(snuca.counters.migrations, 0, "static NUCA must not migrate");
    let dnuca = quick(Scheme::CmpDnuca3d)
        .build()
        .unwrap()
        .run(&bench)
        .unwrap();
    assert!(dnuca.counters.migrations > 0, "dynamic NUCA must migrate");
}

#[test]
fn three_d_schemes_use_the_pillars_2d_does_not() {
    let bench = BenchmarkProfile::art();
    let d3 = quick(Scheme::CmpDnuca3d)
        .build()
        .unwrap()
        .run(&bench)
        .unwrap();
    assert!(d3.bus_transfers > 0, "3D traffic must cross the buses");
    let d2 = quick(Scheme::CmpDnuca2d)
        .build()
        .unwrap()
        .run(&bench)
        .unwrap();
    assert_eq!(d2.bus_transfers, 0, "a 2D chip has no vertical buses");
}

#[test]
fn four_layers_beat_two_layers_for_static_nuca() {
    // Figure 18's headline at small scale: the distance reduction from
    // extra layers is large and robust.
    let bench = BenchmarkProfile::swim();
    let l2 = quick(Scheme::CmpSnuca3d)
        .layers(2)
        .build()
        .unwrap()
        .run(&bench)
        .unwrap();
    let l4 = quick(Scheme::CmpSnuca3d)
        .layers(4)
        .build()
        .unwrap()
        .run(&bench)
        .unwrap();
    assert!(
        l4.avg_l2_hit_latency() < l2.avg_l2_hit_latency(),
        "4 layers {} must beat 2 layers {}",
        l4.avg_l2_hit_latency(),
        l2.avg_l2_hit_latency()
    );
}

#[test]
fn migration_3d_beats_static_3d() {
    // Figure 13: CMP-DNUCA-3D gains over CMP-SNUCA-3D from migration.
    let bench = BenchmarkProfile::swim();
    let snuca = quick(Scheme::CmpSnuca3d)
        .build()
        .unwrap()
        .run(&bench)
        .unwrap();
    let dnuca = quick(Scheme::CmpDnuca3d)
        .build()
        .unwrap()
        .run(&bench)
        .unwrap();
    assert!(
        dnuca.avg_l2_hit_latency() < snuca.avg_l2_hit_latency(),
        "DNUCA-3D {} must beat SNUCA-3D {}",
        dnuca.avg_l2_hit_latency(),
        snuca.avg_l2_hit_latency()
    );
}

#[test]
fn three_d_migrates_far_less_than_2d() {
    // Figure 14's headline: whole layers sit in each CPU's vicinity, so
    // the 3D scheme needs far fewer migrations per transaction.
    let bench = BenchmarkProfile::swim();
    let d2 = quick(Scheme::CmpDnuca2d)
        .build()
        .unwrap()
        .run(&bench)
        .unwrap();
    let d3 = quick(Scheme::CmpDnuca3d)
        .build()
        .unwrap()
        .run(&bench)
        .unwrap();
    let ratio = d3.counters.migrations as f64 / d2.counters.migrations.max(1) as f64;
    assert!(
        ratio < 0.8,
        "3D must migrate well under 2D's rate, got {ratio:.2}"
    );
}

#[test]
fn energy_tracks_activity() {
    let bench = BenchmarkProfile::galgel();
    let report = quick(Scheme::CmpDnuca3d)
        .build()
        .unwrap()
        .run(&bench)
        .unwrap();
    let energy = report.energy();
    assert!(energy.router_j > 0.0);
    assert!(energy.bus_j > 0.0);
    assert!(energy.bank_j > 0.0);
    assert!(energy.tag_j > 0.0);
    assert!(energy.total_j() > energy.router_j);
}

#[test]
fn sampling_window_excludes_warmup() {
    let bench = BenchmarkProfile::synthetic();
    let with_warmup = quick(Scheme::CmpSnuca3d)
        .warmup_transactions(400)
        .build()
        .unwrap()
        .run(&bench)
        .unwrap();
    assert!((1_190..=1_210).contains(&with_warmup.counters.l2_transactions));
}
