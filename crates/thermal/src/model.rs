//! Steady-state 3D thermal estimation (the paper's HS3d substitute).
//!
//! The chip is discretised at tile granularity into a thermal RC network:
//! lateral conduction between neighbouring tiles of a layer, vertical
//! conduction between stacked tiles of adjacent layers, and a heat-sink
//! path from every layer-0 tile to ambient. Solving the steady state
//! (Gauss–Seidel with successive over-relaxation) yields the per-tile
//! temperature map from which Table 3's peak/average/minimum figures are
//! read.
//!
//! The model reproduces the paper's two key mechanisms:
//!
//! * **Stacking layers shrinks the footprint**, so fewer tiles touch the
//!   heat sink and the whole chip runs hotter on average (Table 3: 2D
//!   54 °C → 2 layers 64 °C → 4 layers 87 °C average).
//! * **Vertically aligned CPUs** push their heat through the same sink
//!   column, so stacked placements spike the peak temperature while
//!   offset placements barely move it.

use nim_topology::floorplan::{Floorplan, TileKind};
use nim_types::Coord;

use crate::calib;

/// Thermal network parameters (see [`calib`] for the calibration story).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThermalConfig {
    /// Ambient (heat-sink) temperature in °C.
    pub ambient_c: f64,
    /// Tile-to-tile lateral resistance within a layer (K/W).
    pub r_lateral: f64,
    /// Tile-to-tile vertical resistance between adjacent layers (K/W).
    pub r_vertical: f64,
    /// Per-tile resistance from layer 0 to the heat sink (K/W).
    pub r_sink: f64,
    /// Power of one CPU tile (W).
    pub cpu_w: f64,
    /// Power of one (clock-gated) cache-bank tile (W).
    pub bank_w: f64,
    /// Convergence threshold on the largest per-iteration change (K).
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iters: u32,
}

impl Default for ThermalConfig {
    fn default() -> Self {
        Self {
            ambient_c: calib::AMBIENT_C,
            r_lateral: calib::R_LATERAL,
            r_vertical: calib::R_VERTICAL,
            r_sink: calib::R_SINK,
            cpu_w: calib::CPU_W,
            bank_w: calib::BANK_W,
            tolerance: 1e-5,
            max_iters: 200_000,
        }
    }
}

/// The solved steady-state temperature field.
#[derive(Clone, Debug, PartialEq)]
pub struct ThermalProfile {
    width: u8,
    height: u8,
    layers: u8,
    temps: Vec<f64>,
}

impl ThermalProfile {
    /// Peak temperature in °C.
    pub fn peak(&self) -> f64 {
        self.temps.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Average temperature in °C.
    pub fn avg(&self) -> f64 {
        self.temps.iter().sum::<f64>() / self.temps.len() as f64
    }

    /// Minimum temperature in °C.
    pub fn min(&self) -> f64 {
        self.temps.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Temperature of one tile.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the floorplan.
    pub fn at(&self, c: Coord) -> f64 {
        assert!(
            c.x < self.width && c.y < self.height && c.layer < self.layers,
            "coordinate {c} outside profile"
        );
        let i = (c.layer as usize * self.height as usize + c.y as usize) * self.width as usize
            + c.x as usize;
        self.temps[i]
    }

    /// The hottest tile.
    pub fn hotspot(&self) -> Coord {
        let (i, _) = self
            .temps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("profile is nonempty");
        let per_layer = self.width as usize * self.height as usize;
        Coord::new(
            (i % per_layer % self.width as usize) as u8,
            (i % per_layer / self.width as usize) as u8,
            (i / per_layer) as u8,
        )
    }
}

/// Parameters for transient (time-domain) simulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransientConfig {
    /// Heat capacity of one tile in J/K. A 1.5 mm × 1.5 mm × 0.3 mm
    /// silicon tile at ρc ≈ 1.6 MJ/(m³·K) holds ≈ 1.1 mJ/K.
    pub tile_heat_capacity: f64,
    /// Integration step in seconds (clamped to the explicit-Euler
    /// stability bound internally).
    pub dt: f64,
}

impl Default for TransientConfig {
    fn default() -> Self {
        Self {
            tile_heat_capacity: 1.1e-3,
            dt: 1e-3,
        }
    }
}

/// The thermal model of one floorplan.
#[derive(Clone, Debug)]
pub struct ThermalModel {
    plan: Floorplan,
    power: Vec<f64>,
}

impl ThermalModel {
    /// Builds the model with per-tile power from the config's CPU/bank
    /// figures.
    pub fn new(plan: &Floorplan, cfg: &ThermalConfig) -> Self {
        let power = plan
            .iter()
            .map(|(_, kind)| match kind {
                TileKind::Cpu => cfg.cpu_w,
                TileKind::Bank => cfg.bank_w,
            })
            .collect();
        Self {
            plan: plan.clone(),
            power,
        }
    }

    /// Overrides the power of one tile (e.g. activity-dependent banks).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the floorplan.
    pub fn set_power(&mut self, c: Coord, watts: f64) {
        let idx = self.plan.index(c);
        self.power[idx] = watts;
    }

    /// Total dissipated power in watts.
    pub fn total_power(&self) -> f64 {
        self.power.iter().sum()
    }

    /// Integrates the transient thermal response over `duration` seconds
    /// (explicit Euler on the same RC network the steady-state solver
    /// uses), starting from `initial` or from ambient.
    ///
    /// The heat-up of a chip after power-on, or the response to an
    /// activity phase change, takes tens of milliseconds through the
    /// heat-sink time constant — the reason thermally-aware data
    /// management (the paper's closing outlook) can afford slow policies.
    ///
    /// # Panics
    ///
    /// Panics if `initial` has a different geometry than this model.
    pub fn solve_transient(
        &self,
        cfg: &ThermalConfig,
        tcfg: &TransientConfig,
        duration: f64,
        initial: Option<&ThermalProfile>,
    ) -> ThermalProfile {
        let (w, h, l) = (
            self.plan.width() as usize,
            self.plan.height() as usize,
            self.plan.layers() as usize,
        );
        let per_layer = w * h;
        let n = per_layer * l;
        let mut temps = match initial {
            Some(p) => {
                assert_eq!(p.temps.len(), n, "initial profile geometry mismatch");
                p.temps.clone()
            }
            None => vec![cfg.ambient_c; n],
        };
        let g_lat = 1.0 / cfg.r_lateral;
        let g_vert = 1.0 / cfg.r_vertical;
        let g_sink = 1.0 / cfg.r_sink;
        // Explicit-Euler stability: dt < C / max(Σg). Clamp with margin.
        let g_max = 4.0 * g_lat + 2.0 * g_vert + g_sink;
        let dt = tcfg.dt.min(0.5 * tcfg.tile_heat_capacity / g_max).max(1e-9);
        let steps = (duration / dt).ceil() as u64;
        let mut next = temps.clone();
        for _ in 0..steps {
            for i in 0..n {
                let layer = i / per_layer;
                let rem = i % per_layer;
                let (x, y) = (rem % w, rem / w);
                let t = temps[i];
                let mut flow = self.power[i];
                if x > 0 {
                    flow += g_lat * (temps[i - 1] - t);
                }
                if x + 1 < w {
                    flow += g_lat * (temps[i + 1] - t);
                }
                if y > 0 {
                    flow += g_lat * (temps[i - w] - t);
                }
                if y + 1 < h {
                    flow += g_lat * (temps[i + w] - t);
                }
                if layer > 0 {
                    flow += g_vert * (temps[i - per_layer] - t);
                }
                if layer + 1 < l {
                    flow += g_vert * (temps[i + per_layer] - t);
                }
                if layer == 0 {
                    flow += g_sink * (cfg.ambient_c - t);
                }
                next[i] = t + dt * flow / tcfg.tile_heat_capacity;
            }
            std::mem::swap(&mut temps, &mut next);
        }
        ThermalProfile {
            width: self.plan.width(),
            height: self.plan.height(),
            layers: self.plan.layers(),
            temps,
        }
    }

    /// Solves the steady state.
    ///
    /// # Panics
    ///
    /// Panics if the solver fails to converge within `cfg.max_iters`
    /// (indicates a badly conditioned configuration).
    pub fn solve(&self, cfg: &ThermalConfig) -> ThermalProfile {
        let (w, h, l) = (
            self.plan.width() as usize,
            self.plan.height() as usize,
            self.plan.layers() as usize,
        );
        let per_layer = w * h;
        let n = per_layer * l;
        let g_lat = 1.0 / cfg.r_lateral;
        let g_vert = 1.0 / cfg.r_vertical;
        let g_sink = 1.0 / cfg.r_sink;
        let mut temps = vec![cfg.ambient_c; n];
        // Successive over-relaxation on the linear system.
        let omega = 1.8;
        for iter in 0..cfg.max_iters {
            let mut max_delta: f64 = 0.0;
            for i in 0..n {
                let layer = i / per_layer;
                let rem = i % per_layer;
                let (x, y) = (rem % w, rem / w);
                let mut num = self.power[i];
                let mut den = 0.0;
                if x > 0 {
                    num += g_lat * temps[i - 1];
                    den += g_lat;
                }
                if x + 1 < w {
                    num += g_lat * temps[i + 1];
                    den += g_lat;
                }
                if y > 0 {
                    num += g_lat * temps[i - w];
                    den += g_lat;
                }
                if y + 1 < h {
                    num += g_lat * temps[i + w];
                    den += g_lat;
                }
                if layer > 0 {
                    num += g_vert * temps[i - per_layer];
                    den += g_vert;
                }
                if layer + 1 < l {
                    num += g_vert * temps[i + per_layer];
                    den += g_vert;
                }
                if layer == 0 {
                    num += g_sink * cfg.ambient_c;
                    den += g_sink;
                }
                let fresh = num / den;
                let relaxed = temps[i] + omega * (fresh - temps[i]);
                max_delta = max_delta.max((relaxed - temps[i]).abs());
                temps[i] = relaxed;
            }
            if max_delta < cfg.tolerance {
                return ThermalProfile {
                    width: self.plan.width(),
                    height: self.plan.height(),
                    layers: self.plan.layers(),
                    temps,
                };
            }
            assert!(
                iter + 1 < cfg.max_iters,
                "thermal solver failed to converge in {} iterations",
                cfg.max_iters
            );
        }
        unreachable!("loop either returns or panics")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nim_topology::{ChipLayout, PlacementPolicy};
    use nim_types::SystemConfig;

    fn profile_for(layers: u8, policy: PlacementPolicy, pillars: u16) -> ThermalProfile {
        let mut cfg = SystemConfig::default()
            .with_layers(layers)
            .with_pillars(pillars);
        cfg.num_cpus = 8;
        let layout = ChipLayout::new(&cfg).unwrap();
        let seats = policy.place(&layout, 8).unwrap();
        let plan = Floorplan::new(&layout, &seats);
        let tcfg = ThermalConfig::default();
        ThermalModel::new(&plan, &tcfg).solve(&tcfg)
    }

    #[test]
    fn uniform_power_gives_uniform_ish_field() {
        let layout = ChipLayout::new(&SystemConfig::default().flattened()).unwrap();
        let plan = Floorplan::new(&layout, &[]);
        let tcfg = ThermalConfig::default();
        let profile = ThermalModel::new(&plan, &tcfg).solve(&tcfg);
        // All tiles are banks: small spread, everything above ambient.
        assert!(profile.min() > tcfg.ambient_c);
        assert!(profile.peak() - profile.min() < 5.0);
    }

    #[test]
    fn cpu_tiles_are_the_hotspots() {
        let p = profile_for(1, PlacementPolicy::Interior2d, 8);
        assert!(p.peak() > p.avg() + 10.0, "8 W CPUs must stand out");
    }

    #[test]
    fn more_layers_run_hotter_on_average() {
        let p1 = profile_for(1, PlacementPolicy::Interior2d, 8);
        let p2 = profile_for(2, PlacementPolicy::MaximalOffset, 8);
        let p4 = profile_for(4, PlacementPolicy::MaximalOffset, 8);
        assert!(p2.avg() > p1.avg(), "2L > 2D average (Table 3)");
        assert!(p4.avg() > p2.avg(), "4L > 2L average (Table 3)");
    }

    #[test]
    fn stacking_cpus_creates_hotspots() {
        let offset = profile_for(2, PlacementPolicy::MaximalOffset, 8);
        let stacked = profile_for(2, PlacementPolicy::Stacked, 8);
        assert!(
            stacked.peak() > offset.peak() + 10.0,
            "stacked {} vs offset {}",
            stacked.peak(),
            offset.peak()
        );
        // Average is placement-independent: same power, same footprint.
        assert!((stacked.avg() - offset.avg()).abs() < 1.0);
    }

    #[test]
    fn larger_offset_reduces_peak_temperature() {
        let k1 = profile_for(2, PlacementPolicy::Algorithm1 { k: 1 }, 4);
        let k2 = profile_for(2, PlacementPolicy::Algorithm1 { k: 2 }, 4);
        assert!(
            k2.peak() <= k1.peak(),
            "k=2 peak {} must not exceed k=1 peak {}",
            k2.peak(),
            k1.peak()
        );
    }

    #[test]
    fn hotspot_is_a_cpu_tile() {
        let cfg = SystemConfig {
            num_cpus: 8,
            ..SystemConfig::default()
        };
        let layout = ChipLayout::new(&cfg).unwrap();
        let seats = PlacementPolicy::MaximalOffset.place(&layout, 8).unwrap();
        let plan = Floorplan::new(&layout, &seats);
        let tcfg = ThermalConfig::default();
        let profile = ThermalModel::new(&plan, &tcfg).solve(&tcfg);
        let hot = profile.hotspot();
        assert_eq!(plan.kind_at(hot), TileKind::Cpu);
    }

    #[test]
    fn set_power_changes_the_field() {
        let layout = ChipLayout::new(&SystemConfig::default()).unwrap();
        let plan = Floorplan::new(&layout, &[]);
        let tcfg = ThermalConfig::default();
        let mut model = ThermalModel::new(&plan, &tcfg);
        let base = model.solve(&tcfg).peak();
        model.set_power(Coord::new(4, 4, 1), 20.0);
        let hot = model.solve(&tcfg);
        assert!(hot.peak() > base + 5.0);
        assert_eq!(hot.hotspot(), Coord::new(4, 4, 1));
    }

    #[test]
    fn transient_converges_to_the_steady_state() {
        let cfg = SystemConfig {
            num_cpus: 8,
            ..SystemConfig::default()
        };
        let layout = ChipLayout::new(&cfg).unwrap();
        let seats = PlacementPolicy::MaximalOffset.place(&layout, 8).unwrap();
        let plan = Floorplan::new(&layout, &seats);
        let tcfg = ThermalConfig::default();
        let model = ThermalModel::new(&plan, &tcfg);
        let steady = model.solve(&tcfg);
        let trans = model.solve_transient(&tcfg, &TransientConfig::default(), 1.0, None);
        assert!(
            (trans.peak() - steady.peak()).abs() < 1.0,
            "after 1 s the transient ({:.2}) must reach steady state ({:.2})",
            trans.peak(),
            steady.peak()
        );
        assert!((trans.avg() - steady.avg()).abs() < 0.5);
    }

    #[test]
    fn transient_from_steady_state_stays_put() {
        let layout = ChipLayout::new(&SystemConfig::default()).unwrap();
        let plan = Floorplan::new(&layout, &[]);
        let tcfg = ThermalConfig::default();
        let model = ThermalModel::new(&plan, &tcfg);
        let steady = model.solve(&tcfg);
        let later = model.solve_transient(&tcfg, &TransientConfig::default(), 0.05, Some(&steady));
        assert!((later.peak() - steady.peak()).abs() < 0.1);
        assert!((later.min() - steady.min()).abs() < 0.1);
    }

    #[test]
    fn transient_heats_monotonically_from_ambient() {
        let cfg = SystemConfig {
            num_cpus: 8,
            ..SystemConfig::default()
        };
        let layout = ChipLayout::new(&cfg).unwrap();
        let seats = PlacementPolicy::MaximalOffset.place(&layout, 8).unwrap();
        let plan = Floorplan::new(&layout, &seats);
        let tcfg = ThermalConfig::default();
        let model = ThermalModel::new(&plan, &tcfg);
        let t10 = model.solve_transient(&tcfg, &TransientConfig::default(), 0.01, None);
        let t40 = model.solve_transient(&tcfg, &TransientConfig::default(), 0.04, None);
        let steady = model.solve(&tcfg);
        assert!(t10.peak() < t40.peak(), "still heating");
        assert!(t40.peak() <= steady.peak() + 0.1, "never overshoots");
        assert!(t10.peak() > tcfg.ambient_c, "power heats the die");
    }

    #[test]
    fn energy_balance_roughly_holds() {
        // Total heat must leave through the sink: sum over layer-0 tiles
        // of (T - ambient)/R_sink equals total power.
        let cfg = SystemConfig {
            num_cpus: 8,
            ..SystemConfig::default()
        };
        let layout = ChipLayout::new(&cfg).unwrap();
        let seats = PlacementPolicy::MaximalOffset.place(&layout, 8).unwrap();
        let plan = Floorplan::new(&layout, &seats);
        let tcfg = ThermalConfig {
            tolerance: 1e-7,
            ..ThermalConfig::default()
        };
        let model = ThermalModel::new(&plan, &tcfg);
        let profile = model.solve(&tcfg);
        let mut sink_w = 0.0;
        for y in 0..plan.height() {
            for x in 0..plan.width() {
                sink_w += (profile.at(Coord::new(x, y, 0)) - tcfg.ambient_c) / tcfg.r_sink;
            }
        }
        let total = model.total_power();
        assert!(
            (sink_w - total).abs() / total < 0.01,
            "sink {sink_w} W vs dissipated {total} W"
        );
    }
}
