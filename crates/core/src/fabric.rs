//! The seam between protocol decisions and the simulation fabric.
//!
//! The L2 protocol engine ([`Engine`](crate::protocol::Engine)) never
//! touches [`Network`] or the timed-event heap directly: every packet
//! send, every scheduled latency, and every shared-resource claim goes
//! through the [`Fabric`] trait. Two implementations exist:
//!
//! * [`SimFabric`] — the real thing: the cycle-accurate 3D NoC, the
//!   timed-event heap, the contention-aware [`timing`](crate::timing)
//!   models, and the observability handle.
//! * [`TestFabric`] — a recording double for unit tests: sends and
//!   scheduled events land in inspectable queues, resource claims use
//!   the same timing models, and no network is ever constructed.
//!
//! This seam is what makes the protocol transitions unit-testable and
//! is the hook for future execution substrates (a sharded or
//! message-passing fabric can implement [`Fabric`] without the protocol
//! code changing).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use nim_noc::{Network, SendRequest};
use nim_obs::{Category, EventData, Obs};
use nim_types::{ClusterId, Coord, Cycle, PillarId};

use crate::timing::{Banks, MemoryChannels, TagArrays};
use crate::token::{TimedEvent, Token};

// Protocol code imports the passive message types through this seam so
// `protocol.rs` never names the `nim_noc` crate directly. The
// queue/service delay split rides along for latency attribution.
pub(crate) use crate::timing::ClaimedDelay;
pub(crate) use nim_noc::{Delivered, TrafficClass};

/// Everything the protocol engine may ask of the simulation substrate.
///
/// The methods are deliberately narrow: inject one packet, schedule one
/// timed event, claim one shared resource (tag array, data bank, DRAM
/// channel) and learn when it completes, and reach the observability
/// handle. Protocol handlers hold no other channel to the outside
/// world, so swapping the substrate (test double today, sharded
/// execution tomorrow) cannot change protocol behavior.
pub(crate) trait Fabric {
    /// Injects one packet into the interconnect; `token` comes back via
    /// the delivery path when the packet reaches `dst`.
    fn send(
        &mut self,
        src: Coord,
        dst: Coord,
        class: TrafficClass,
        flits: u32,
        token: Token,
        via: Option<PillarId>,
    );

    /// Schedules `ev` to fire `delay` cycles after `now`. Events due the
    /// same cycle fire in scheduling order.
    fn schedule(&mut self, now: Cycle, delay: u64, ev: TimedEvent);

    /// Claims `cluster`'s tag array for one probe; returns the latency
    /// until the lookup completes, split into queueing and service.
    fn tag_delay(&mut self, cluster: ClusterId, now: Cycle) -> ClaimedDelay;

    /// Claims the data bank at node index `node` for one access; returns
    /// the latency until it completes, split into queueing and service.
    /// `write` distinguishes stores/fills/migration absorbs from reads
    /// in the trace.
    fn bank_delay(&mut self, node: usize, now: Cycle, write: bool) -> ClaimedDelay;

    /// Claims memory controller `mc`'s DRAM channel; returns the
    /// latency until the DRAM access completes, split into bandwidth
    /// queueing and the DRAM access itself.
    fn memory_delay(&mut self, mc: usize, now: Cycle) -> ClaimedDelay;

    /// The observability handle protocol code emits events and metrics
    /// through (disabled by default: one branch per site).
    fn obs(&self) -> &Obs;
}

/// The real fabric: the 3D NoC, the timed-event heap, and the shared
/// resource timing models, owned together so the run loop in
/// [`System`](crate::System) can drive phases and fast-forward while
/// protocol code stays behind the [`Fabric`] trait.
#[derive(Debug)]
pub(crate) struct SimFabric {
    /// The cycle-accurate 3D mesh + dTDMA pillar network.
    pub(crate) net: Network,
    /// Timed events, keyed by `(due_cycle, sequence)` so same-cycle
    /// events fire in scheduling order.
    pub(crate) events: BinaryHeap<Reverse<(u64, u64, TimedEvent)>>,
    next_seq: u64,
    tags: TagArrays,
    banks: Banks,
    memory: MemoryChannels,
    obs: Obs,
}

impl SimFabric {
    pub(crate) fn new(
        net: Network,
        tags: TagArrays,
        banks: Banks,
        memory: MemoryChannels,
        obs: Obs,
    ) -> Self {
        Self {
            net,
            events: BinaryHeap::new(),
            next_seq: 0,
            tags,
            banks,
            memory,
            obs,
        }
    }

    /// Accesses each bank performed so far (node-indexed), for
    /// activity-driven power and thermal analysis.
    pub(crate) fn bank_access_counts(&self) -> &[u64] {
        self.banks.access_counts()
    }
}

impl Fabric for SimFabric {
    fn send(
        &mut self,
        src: Coord,
        dst: Coord,
        class: TrafficClass,
        flits: u32,
        token: Token,
        via: Option<PillarId>,
    ) {
        self.net.send(SendRequest {
            src,
            dst,
            via,
            class,
            flits,
            token: token.encode(),
        });
    }

    fn schedule(&mut self, now: Cycle, delay: u64, ev: TimedEvent) {
        self.next_seq += 1;
        self.events
            .push(Reverse((now.0 + delay, self.next_seq, ev)));
    }

    fn tag_delay(&mut self, cluster: ClusterId, now: Cycle) -> ClaimedDelay {
        self.tags.claim(cluster, now)
    }

    fn bank_delay(&mut self, node: usize, now: Cycle, write: bool) -> ClaimedDelay {
        self.obs.emit(Category::Bank, || EventData::BankAccess {
            node: node as u32,
            write,
        });
        self.banks.claim(node, now)
    }

    fn memory_delay(&mut self, mc: usize, now: Cycle) -> ClaimedDelay {
        self.memory.claim(mc, now)
    }

    fn obs(&self) -> &Obs {
        &self.obs
    }
}

/// A recording test double: protocol transitions run against real
/// timing models, but packets land in [`TestFabric::sent`] and timed
/// events in [`TestFabric::events`] instead of a network. Tests pump
/// both queues by hand (or via the helpers in the protocol unit tests)
/// to walk a transaction through its whole lifecycle without a NoC.
#[cfg(test)]
#[derive(Debug)]
pub(crate) struct TestFabric {
    /// Every packet sent, in order.
    pub(crate) sent: Vec<SendRequest>,
    /// Scheduled events, keyed like the real heap.
    pub(crate) events: BinaryHeap<Reverse<(u64, u64, TimedEvent)>>,
    next_seq: u64,
    tags: TagArrays,
    banks: Banks,
    memory: MemoryChannels,
    obs: Obs,
}

#[cfg(test)]
impl TestFabric {
    pub(crate) fn new(clusters: usize, nodes: usize, controllers: usize) -> Self {
        // The paper's Table 4 latencies, so unit-test delays line up
        // with what the real system charges.
        let cfg = nim_types::SystemConfig::default();
        Self {
            sent: Vec::new(),
            events: BinaryHeap::new(),
            next_seq: 0,
            tags: TagArrays::new(clusters, u64::from(cfg.l2.tag_latency)),
            banks: Banks::new(nodes, u64::from(cfg.l2.bank_latency)),
            memory: MemoryChannels::new(
                controllers.max(1),
                u64::from(cfg.memory_interval),
                u64::from(cfg.memory_latency),
            ),
            obs: Obs::disabled(),
        }
    }

    /// Pops the earliest scheduled event, if any.
    pub(crate) fn pop_event(&mut self) -> Option<(u64, TimedEvent)> {
        self.events.pop().map(|Reverse((due, _, ev))| (due, ev))
    }

    /// Drains and returns everything sent so far.
    pub(crate) fn take_sent(&mut self) -> Vec<SendRequest> {
        std::mem::take(&mut self.sent)
    }
}

#[cfg(test)]
impl Fabric for TestFabric {
    fn send(
        &mut self,
        src: Coord,
        dst: Coord,
        class: TrafficClass,
        flits: u32,
        token: Token,
        via: Option<PillarId>,
    ) {
        self.sent.push(SendRequest {
            src,
            dst,
            via,
            class,
            flits,
            token: token.encode(),
        });
    }

    fn schedule(&mut self, now: Cycle, delay: u64, ev: TimedEvent) {
        self.next_seq += 1;
        self.events
            .push(Reverse((now.0 + delay, self.next_seq, ev)));
    }

    fn tag_delay(&mut self, cluster: ClusterId, now: Cycle) -> ClaimedDelay {
        self.tags.claim(cluster, now)
    }

    fn bank_delay(&mut self, node: usize, now: Cycle, _write: bool) -> ClaimedDelay {
        self.banks.claim(node, now)
    }

    fn memory_delay(&mut self, mc: usize, now: Cycle) -> ClaimedDelay {
        self.memory.claim(mc, now)
    }

    fn obs(&self) -> &Obs {
        &self.obs
    }
}
