//! Sharded multi-threaded simulation must be invisible in the results:
//! a run whose network is cut into 2 or 4 independently-advancing
//! cluster-row shards (what `NIM_SHARDS` / `--shards` select at process
//! level) must agree with the plain sequential run on every report
//! field, the per-cluster L2 hit/miss matrix, the epoch-sample table,
//! the trace event stream, and the final cycle — bit for bit. Cells
//! cover every scheme, cold-cache and replication and
//! edge-memory-controller variants, the narrow-bus serialisation mode,
//! four-layer chips, trace-enabled cells that pin the deferred-
//! `FlitHop` replay order on both layer-aligned (4-layer × 4 shards)
//! and cluster-granular (2-layer × 4 shards, each layer's mesh cut at
//! mid-height) cuts, and a forced-threading repetition test that pins
//! cross-thread scheduling out of the results.

use std::fmt::Write as _;

use nim_core::{Scheme, SystemBuilder};
use nim_obs::{CategoryMask, Obs, ObsConfig};
use nim_types::SystemConfig;
use nim_workload::BenchmarkProfile;

/// Knobs one equivalence cell varies besides the shard count.
#[derive(Clone, Copy, Default)]
struct Cell {
    narrow_bus: bool,
    layers: Option<u8>,
    cold: bool,
    replication: bool,
    edge_memory: bool,
    /// Trace everything (including the per-flit hop firehose) so the
    /// window executor's deferred-event replay is compared too.
    trace_hops: bool,
    /// Force the threaded window executor onto every window (spawn
    /// threshold 1, 4 workers) instead of letting the calibrator decide.
    forced_threading: bool,
}

/// Everything a run can disagree on, as one comparable blob.
#[derive(PartialEq, Debug)]
struct Fingerprint {
    report: String,
    final_cycle: u64,
    /// `l2/hits/{local}/{serve}` + `l2/miss_from/{local}` counters.
    hit_matrix: String,
    /// Epoch-sampled rows and trace events, via the trace export with
    /// the wall-clock-dependent summary line stripped.
    samples: String,
}

fn run_one(scheme: Scheme, profile: &BenchmarkProfile, cell: Cell, shards: usize) -> Fingerprint {
    let mut cfg = SystemConfig::default();
    if let Some(layers) = cell.layers {
        cfg.network.layers = layers;
    }
    if cell.narrow_bus {
        // A 32-bit bus serialises each 128-bit flit over 4 cycles,
        // stretching the pillar-grant lookahead the window planner uses.
        cfg.network.bus_width_bits = 32;
    }
    let obs = Obs::new(ObsConfig {
        trace: cell.trace_hops,
        mask: if cell.trace_hops {
            CategoryMask::ALL
        } else {
            CategoryMask::default_trace()
        },
        sample_every: 2_000,
        ..ObsConfig::default()
    });
    let mut builder = SystemBuilder::new(scheme)
        .config(cfg)
        .seed(42)
        .warmup_transactions(50)
        .sampled_transactions(400)
        .prewarm(!cell.cold)
        .replication(cell.replication)
        .edge_memory_controllers(cell.edge_memory)
        .shards(shards)
        .observability(obs.clone());
    if cell.forced_threading {
        builder = builder.window_tuning(1, 4);
    }
    let mut sys = builder.build().expect("system builds");
    let report = sys.run(profile).expect("run completes");
    let final_cycle = sys.network().now().0;
    let hit_matrix = obs
        .with_metrics(|m| {
            let mut s = String::new();
            for (name, metric) in m.with_prefix("l2/hits/") {
                let _ = writeln!(s, "{name} = {metric:?}");
            }
            for (name, metric) in m.with_prefix("l2/miss_from/") {
                let _ = writeln!(s, "{name} = {metric:?}");
            }
            s
        })
        .expect("obs enabled");
    let mut trace = Vec::new();
    obs.export_trace(&mut trace).expect("trace export");
    let samples = String::from_utf8(trace)
        .expect("utf-8 trace")
        .lines()
        .filter(|l| !l.contains("trace_summary"))
        .collect::<Vec<_>>()
        .join("\n");
    Fingerprint {
        // RunReport has no PartialEq; its Debug form covers every field.
        report: format!("{report:?}"),
        final_cycle,
        hit_matrix,
        samples,
    }
}

/// One test fn on purpose: each cell simulates a full (small) run three
/// times, and keeping them serial bounds peak memory in debug CI.
#[test]
fn sharding_matches_sequential_mode_bit_for_bit() {
    let benchmarks = [BenchmarkProfile::art(), BenchmarkProfile::swim()];
    let mut cells: Vec<(Scheme, &BenchmarkProfile, Cell)> = Vec::new();
    for profile in &benchmarks {
        for &scheme in &Scheme::ALL {
            cells.push((scheme, profile, Cell::default()));
        }
        // Four-layer variants so a 4-shard request is genuinely four
        // regions rather than clamping to the layer count.
        cells.push((
            Scheme::CmpDnuca3d,
            profile,
            Cell {
                layers: Some(4),
                ..Cell::default()
            },
        ));
    }
    cells.push((
        Scheme::CmpSnuca3d,
        &benchmarks[0],
        Cell {
            narrow_bus: true,
            ..Cell::default()
        },
    ));
    cells.push((
        Scheme::CmpDnuca3d,
        &benchmarks[1],
        Cell {
            cold: true,
            ..Cell::default()
        },
    ));
    cells.push((
        Scheme::CmpDnuca3d,
        &benchmarks[0],
        Cell {
            replication: true,
            ..Cell::default()
        },
    ));
    cells.push((
        Scheme::CmpSnuca3d,
        &benchmarks[1],
        Cell {
            edge_memory: true,
            ..Cell::default()
        },
    ));
    // Full-trace cells: the deferred FlitHop replay must reproduce the
    // sequential event stream exactly, stamps and order included — on a
    // layer-aligned cut (4 layers × 4 shards) and on a cluster-granular
    // cut (default 2 layers × 4 shards, each layer split at mid-height,
    // so the mesh-boundary lookahead governs the window lengths).
    cells.push((
        Scheme::CmpDnuca3d,
        &benchmarks[0],
        Cell {
            layers: Some(4),
            trace_hops: true,
            ..Cell::default()
        },
    ));
    cells.push((
        Scheme::CmpDnuca3d,
        &benchmarks[0],
        Cell {
            trace_hops: true,
            ..Cell::default()
        },
    ));

    for (scheme, profile, cell) in cells {
        let sequential = run_one(scheme, profile, cell, 1);
        for shards in [2usize, 4] {
            let sharded = run_one(scheme, profile, cell, shards);
            assert_eq!(
                sequential,
                sharded,
                "{scheme:?}/{}/layers={:?}/narrow={}/cold={}/repl={}/edge={}/hops={}: \
                 {shards}-shard run must be bit-identical to sequential",
                profile.name,
                cell.layers,
                cell.narrow_bus,
                cell.cold,
                cell.replication,
                cell.edge_memory,
                cell.trace_hops
            );
        }
    }
}

/// Thread scheduling varies run to run; with the spawn threshold forced
/// to 1 so every window really fans out across worker threads, three
/// repetitions of the same cluster-cut run (2 layers × 4 shards) must
/// agree with each other and with the sequential run, byte for byte —
/// report, hit matrix, samples, and the full trace stream included.
#[test]
fn forced_threading_repetitions_are_byte_identical() {
    let profile = BenchmarkProfile::art();
    let trace_cell = Cell {
        trace_hops: true,
        ..Cell::default()
    };
    let sequential = run_one(Scheme::CmpDnuca3d, &profile, trace_cell, 1);
    let forced = Cell {
        forced_threading: true,
        ..trace_cell
    };
    for rep in 0..3 {
        let sharded = run_one(Scheme::CmpDnuca3d, &profile, forced, 4);
        assert_eq!(
            sequential, sharded,
            "forced-threading repetition {rep} diverged from sequential"
        );
    }
}
