//! The parallel sweep executor must be invisible in the results: any
//! thread count yields the same reports, in the same order, every time.

use nim_core::experiments::{run_cells, ExperimentScale, SweepSpec};
use nim_core::parallel::set_jobs_override;
use nim_core::Scheme;
use nim_workload::BenchmarkProfile;

/// One test fn on purpose: the jobs override is process-global, and the
/// test harness runs `#[test]` fns concurrently.
#[test]
fn parallel_sweep_is_bit_identical_to_sequential_and_repeat_stable() {
    // Small enough for debug builds, varied enough to exercise every
    // scheme plus the layer/pillar override paths.
    let scale = ExperimentScale {
        seed: 42,
        warmup: 50,
        sample: 400,
    };
    let benchmarks = [BenchmarkProfile::art(), BenchmarkProfile::swim()];
    let mut specs = Vec::new();
    for bi in 0..benchmarks.len() {
        for &scheme in &Scheme::ALL {
            specs.push(SweepSpec::new(scheme, bi));
        }
    }
    specs.push(SweepSpec::new(Scheme::CmpSnuca3d, 0).layers(4));
    specs.push(SweepSpec::new(Scheme::CmpDnuca3d, 1).pillars(4));

    let run = |jobs: usize| {
        set_jobs_override(Some(jobs));
        let reports = run_cells(&benchmarks, scale, &specs).expect("sweep runs");
        set_jobs_override(None);
        // RunReport has no PartialEq; its Debug form covers every field.
        format!("{reports:?}")
    };

    let sequential = run(1);
    let parallel = run(4);
    assert_eq!(
        sequential, parallel,
        "jobs=4 must reproduce the jobs=1 sweep bit-for-bit"
    );
    assert_eq!(parallel, run(4), "jobs=4 must be repeat-stable");
}
