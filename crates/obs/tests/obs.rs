//! Black-box coverage of the nim-obs public API: ring overflow
//! accounting, JSON escaping of event labels, epoch-sampler alignment,
//! and latency-histogram quantile edge cases.

use nim_obs::{Category, CategoryMask, EventData, LatencyHistogram, Obs, ObsConfig};

#[test]
fn ring_wrap_keeps_newest_and_counts_dropped() {
    let obs = Obs::new(ObsConfig {
        trace: true,
        trace_capacity: 4,
        mask: CategoryMask::ALL,
        ..ObsConfig::default()
    });
    for cycle in 0..10u64 {
        obs.set_now(cycle);
        obs.emit(Category::Memory, || EventData::MemRequest { line: cycle });
    }
    assert_eq!(obs.event_count(), 4);
    assert_eq!(obs.dropped_events(), 6);

    let mut buf = Vec::new();
    obs.export_trace(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    // Only the newest window survives, in order, and the summary
    // reports the evictions.
    assert!(!text.contains("\"line\":5"));
    assert!(text.contains("\"line\":6"));
    assert!(text.contains("\"line\":9"));
    assert!(text.contains("\"dropped\":6"));
    let pos6 = text.find("\"line\":6").unwrap();
    let pos9 = text.find("\"line\":9").unwrap();
    assert!(pos6 < pos9, "events export oldest-first");
}

#[test]
fn event_labels_are_json_escaped() {
    let obs = Obs::new(ObsConfig {
        trace: true,
        ..ObsConfig::default()
    });
    obs.emit(Category::Meta, || EventData::Note {
        label: "a \"quoted\" label\nwith\tcontrol \u{01} chars \\ and backslash".to_string(),
    });
    let mut buf = Vec::new();
    obs.export_trace(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains(r#"\"quoted\""#));
    assert!(text.contains(r"\n"));
    assert!(text.contains(r"\t"));
    assert!(text.contains(r"\u0001"));
    assert!(text.contains(r"\\ and backslash"));
    // No raw control bytes may survive into the output.
    assert!(text.bytes().all(|b| b == b'\n' || b >= 0x20));
}

#[test]
fn epoch_sampler_aligns_after_gaps() {
    let obs = Obs::new(ObsConfig {
        sample_every: 1000,
        ..ObsConfig::default()
    });
    assert_eq!(obs.sample_every(), 1000);
    assert!(!obs.sample_due(0), "cycle 0 is not an epoch boundary");
    assert!(!obs.sample_due(999));
    assert!(obs.sample_due(1000));
    obs.record_sample(1000, &[("a", 1.0)]);
    assert!(!obs.sample_due(1999));
    assert!(obs.sample_due(2000));

    // A long idle fast-forward skips epochs 2..=7; one snapshot is taken
    // late and the next boundary realigns to the grid.
    obs.record_sample(7321, &[("a", 2.0)]);
    assert!(!obs.sample_due(7999));
    assert!(obs.sample_due(8000));

    let mut buf = Vec::new();
    obs.export_metrics(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("\"every\":1000"));
    assert!(text.contains("[1000,"));
    assert!(text.contains("[7321,"));
}

#[test]
fn quantile_upper_bound_edge_cases() {
    // Empty histogram: no data, quantile is 0.
    let empty = LatencyHistogram::default();
    assert_eq!(empty.quantile_upper_bound(0.0), 0);
    assert_eq!(empty.quantile_upper_bound(0.5), 0);
    assert_eq!(empty.quantile_upper_bound(1.0), 0);

    // Single bucket: every quantile reports that bucket's upper edge.
    let mut single = LatencyHistogram::default();
    for _ in 0..100 {
        single.record(10); // bucket 3 = [8, 16)
    }
    assert_eq!(single.quantile_upper_bound(0.01), 16);
    assert_eq!(single.quantile_upper_bound(0.5), 16);
    assert_eq!(single.quantile_upper_bound(1.0), 16);

    // Out-of-range quantiles clamp instead of panicking: above 1 acts
    // like 1; below 0 acts like 0, whose target of zero samples is met
    // by the very first bucket's upper edge.
    assert_eq!(single.quantile_upper_bound(-1.0), 2);
    assert_eq!(single.quantile_upper_bound(2.0), 16);

    // Overflow bucket: samples >= 65536 cycles land in bucket 15 and
    // report the 1<<16 ceiling.
    let mut over = LatencyHistogram::default();
    over.record(65_536);
    over.record(u64::MAX);
    assert_eq!(over.buckets()[15], 2);
    assert_eq!(over.quantile_upper_bound(1.0), 1 << 16);

    // A single sample of zero still counts (bucket 0).
    let mut zero = LatencyHistogram::default();
    zero.record(0);
    assert_eq!(zero.count(), 1);
    assert_eq!(zero.quantile_upper_bound(1.0), 2);
}

#[test]
fn metrics_export_combines_final_and_epochs() {
    let obs = Obs::new(ObsConfig {
        sample_every: 50,
        ..ObsConfig::default()
    });
    obs.counter_add("l2/hits/0/1", 12);
    obs.gauge_set("pillar/0/occupancy", 0.25);
    obs.histogram_record("noc/latency", 33);
    obs.record_sample(50, &[("pillar/0/occupancy", 0.25)]);
    obs.record_sample(100, &[("pillar/0/occupancy", 0.5)]);

    let mut buf = Vec::new();
    obs.export_metrics(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("\"l2/hits/0/1\":12"));
    assert!(text.contains("\"pillar/0/occupancy\":0.25"));
    assert!(text.contains("\"noc/latency\""));
    assert!(text.contains("\"rows\":["));
    assert!(text.contains("\"cycles_per_sec\":"));
}
