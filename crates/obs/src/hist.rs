//! Power-of-two latency histogram.
//!
//! Lived in `nim-noc` originally; moved here so every pillar of the
//! simulator (and the metrics registry) can record distributions without
//! depending on the NoC crate. `nim-noc` re-exports it unchanged.

use core::fmt;

/// A power-of-two-bucketed latency histogram.
///
/// Bucket `i` counts samples with latency in `[2^i, 2^(i+1))` cycles
/// (bucket 0 covers 0–1). Sixteen buckets cover everything up to 65 535
/// cycles; longer latencies land in the last bucket.
///
/// ```
/// use nim_obs::LatencyHistogram;
///
/// let mut h = LatencyHistogram::default();
/// for lat in [12, 14, 90] {
///     h.record(lat);
/// }
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.quantile_upper_bound(0.6), 16, "two of three are under 16");
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 16],
}

impl LatencyHistogram {
    /// Records one latency sample.
    pub fn record(&mut self, latency: u64) {
        let bucket = (64 - latency.max(1).leading_zeros() as usize - 1).min(15);
        self.buckets[bucket] += 1;
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; 16] {
        &self.buckets
    }

    /// Rebuilds a histogram from raw bucket counts (snapshot restore).
    pub fn from_buckets(buckets: [u64; 16]) -> Self {
        Self { buckets }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The smallest latency bound `b` such that at least `quantile` of
    /// samples are `< 2b` (an upper estimate using bucket upper edges).
    pub fn quantile_upper_bound(&self, quantile: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (quantile.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return 1 << (i + 1);
            }
        }
        1 << 16
    }

    /// The standard latency readout — (p50, p95, p99) upper bounds —
    /// in one call. All zeros for an empty histogram.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (
            self.quantile_upper_bound(0.50),
            self.quantile_upper_bound(0.95),
            self.quantile_upper_bound(0.99),
        )
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.count().max(1);
        for (i, n) in self.buckets.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            writeln!(
                f,
                "[{:>5}, {:>5}) {:>8}  {:>5.1}%",
                1u64 << i,
                1u64 << (i + 1),
                n,
                *n as f64 / total as f64 * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = LatencyHistogram::default();
        for lat in [0u64, 1, 2, 3, 4, 7, 8, 1024, 1_000_000] {
            h.record(lat);
        }
        let b = h.buckets();
        assert_eq!(b[0], 2, "0 and 1");
        assert_eq!(b[1], 2, "2 and 3");
        assert_eq!(b[2], 2, "4 and 7");
        assert_eq!(b[3], 1, "8");
        assert_eq!(b[10], 1, "1024");
        assert_eq!(b[15], 1, "overflow bucket");
        assert_eq!(h.count(), 9);
    }

    #[test]
    fn histogram_quantiles_are_upper_bounds() {
        let mut h = LatencyHistogram::default();
        for _ in 0..90 {
            h.record(10); // bucket 3: [8, 16)
        }
        for _ in 0..10 {
            h.record(100); // bucket 6: [64, 128)
        }
        assert_eq!(h.quantile_upper_bound(0.5), 16);
        assert_eq!(h.quantile_upper_bound(0.99), 128);
        assert_eq!(LatencyHistogram::default().quantile_upper_bound(0.5), 0);
        assert_eq!(h.percentiles(), (16, 128, 128));
        assert_eq!(LatencyHistogram::default().percentiles(), (0, 0, 0));
    }

    #[test]
    fn histogram_display_lists_nonempty_buckets() {
        let mut h = LatencyHistogram::default();
        h.record(5);
        let text = h.to_string();
        assert!(text.contains("[    4,     8)"));
        assert!(text.contains("100.0%"));
    }
}
