//! Figure 14 — block migrations of CMP-DNUCA and CMP-DNUCA-3D,
//! normalised to CMP-DNUCA-2D.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nim_bench::scale_from_env;
use nim_core::experiments::fig14_migrations;
use nim_workload::BenchmarkProfile;

fn bench(c: &mut Criterion) {
    let scale = scale_from_env(true);
    let bench_set = [BenchmarkProfile::swim()];
    let mut group = c.benchmark_group("fig14");
    group.sample_size(10);
    group.bench_function("swim_migrations", |b| {
        b.iter(|| black_box(fig14_migrations(&bench_set, scale).expect("runs complete")))
    });
    group.finish();
    for row in fig14_migrations(&bench_set, scale).expect("runs complete") {
        eprintln!(
            "fig14: {:<6} CMP-DNUCA {:.3}x  CMP-DNUCA-3D {:.3}x of CMP-DNUCA-2D",
            row.benchmark, row.cmp_dnuca, row.cmp_dnuca_3d
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
