//! Run reports: the measurements every figure is built from.

use nim_noc::NetworkStats;
use nim_power::{ActivityCounts, EnergyBreakdown, EnergyModel};
use nim_types::codec::{ByteReader, ByteWriter, Checkpoint, CodecError};

use crate::scheme::Scheme;

/// Raw counters the system accumulates (sampled over the measurement
/// window, after warm-up).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Completed L2 transactions (reads + writes + instruction fetches).
    pub l2_transactions: u64,
    /// Transactions served from the L2.
    pub l2_hits: u64,
    /// Transactions that went to memory.
    pub l2_misses: u64,
    /// Sum of latencies of L2 *hits* (issue to completion), cycles.
    pub hit_latency_sum: u64,
    /// Sum of latencies of L2 misses, cycles.
    pub miss_latency_sum: u64,
    /// Cache-line migrations committed.
    pub migrations: u64,
    /// Data-bank accesses (reads + writes + migration writes).
    pub bank_accesses: u64,
    /// Tag-array probes.
    pub tag_accesses: u64,
    /// L1 invalidation messages sent.
    pub invalidations: u64,
    /// Lines evicted from the L2 (written back to memory).
    pub l2_evictions: u64,
    /// Searches re-issued because a migration raced the probes.
    pub search_retries: u64,
    /// Hits served by a step-1 probe (local cluster or the vicinity
    /// cylinder).
    pub step1_hits: u64,
    /// Hits served by the step-2 multicast.
    pub step2_hits: u64,
    /// Latency sum of step-1 hits.
    pub step1_latency_sum: u64,
    /// Latency sum of step-2 hits.
    pub step2_latency_sum: u64,
    /// Read-only replicas created (replication extension).
    pub replicas_created: u64,
    /// Cycles completed transactions spent traversing the horizontal
    /// mesh (wormhole hops, router waits, reply fan-out).
    pub noc_hop_cycles: u64,
    /// Cycles completed transactions spent waiting for a dTDMA pillar
    /// slot.
    pub pillar_wait_cycles: u64,
    /// Cycles completed transactions spent queueing behind tag-array
    /// and bank serialization.
    pub resource_queue_cycles: u64,
    /// Cycles completed transactions spent in L2 service proper (tag
    /// lookups, bank reads/writes).
    pub l2_service_cycles: u64,
    /// Cycles completed transactions spent waiting on DRAM (channel
    /// queueing, the access itself, and the memory-side network legs).
    pub mem_wait_cycles: u64,
}

impl Counters {
    pub(crate) fn minus(&self, earlier: &Counters) -> Counters {
        Counters {
            l2_transactions: self.l2_transactions - earlier.l2_transactions,
            l2_hits: self.l2_hits - earlier.l2_hits,
            l2_misses: self.l2_misses - earlier.l2_misses,
            hit_latency_sum: self.hit_latency_sum - earlier.hit_latency_sum,
            miss_latency_sum: self.miss_latency_sum - earlier.miss_latency_sum,
            migrations: self.migrations - earlier.migrations,
            bank_accesses: self.bank_accesses - earlier.bank_accesses,
            tag_accesses: self.tag_accesses - earlier.tag_accesses,
            invalidations: self.invalidations - earlier.invalidations,
            l2_evictions: self.l2_evictions - earlier.l2_evictions,
            search_retries: self.search_retries - earlier.search_retries,
            step1_hits: self.step1_hits - earlier.step1_hits,
            step2_hits: self.step2_hits - earlier.step2_hits,
            step1_latency_sum: self.step1_latency_sum - earlier.step1_latency_sum,
            step2_latency_sum: self.step2_latency_sum - earlier.step2_latency_sum,
            replicas_created: self.replicas_created - earlier.replicas_created,
            noc_hop_cycles: self.noc_hop_cycles - earlier.noc_hop_cycles,
            pillar_wait_cycles: self.pillar_wait_cycles - earlier.pillar_wait_cycles,
            resource_queue_cycles: self.resource_queue_cycles - earlier.resource_queue_cycles,
            l2_service_cycles: self.l2_service_cycles - earlier.l2_service_cycles,
            mem_wait_cycles: self.mem_wait_cycles - earlier.mem_wait_cycles,
        }
    }

    /// The five attribution buckets in [`Phase`](crate::txn::Phase)
    /// order. Their sum equals `hit_latency_sum + miss_latency_sum`
    /// exactly — every completed transaction's end-to-end latency is
    /// fully decomposed (the standing sum invariant).
    pub fn phase_cycles(&self) -> [u64; 5] {
        [
            self.noc_hop_cycles,
            self.pillar_wait_cycles,
            self.resource_queue_cycles,
            self.l2_service_cycles,
            self.mem_wait_cycles,
        ]
    }

    /// Every counter in declaration order — the single place that fixes
    /// the field enumeration shared by the snapshot codec and
    /// [`RunReport::fingerprint`]. Adding a `Counters` field means
    /// extending this array (the compiler enforces the length).
    pub fn as_array(&self) -> [u64; 21] {
        [
            self.l2_transactions,
            self.l2_hits,
            self.l2_misses,
            self.hit_latency_sum,
            self.miss_latency_sum,
            self.migrations,
            self.bank_accesses,
            self.tag_accesses,
            self.invalidations,
            self.l2_evictions,
            self.search_retries,
            self.step1_hits,
            self.step2_hits,
            self.step1_latency_sum,
            self.step2_latency_sum,
            self.replicas_created,
            self.noc_hop_cycles,
            self.pillar_wait_cycles,
            self.resource_queue_cycles,
            self.l2_service_cycles,
            self.mem_wait_cycles,
        ]
    }

    /// Rebuilds counters from [`Counters::as_array`] order.
    pub fn from_array(v: [u64; 21]) -> Counters {
        Counters {
            l2_transactions: v[0],
            l2_hits: v[1],
            l2_misses: v[2],
            hit_latency_sum: v[3],
            miss_latency_sum: v[4],
            migrations: v[5],
            bank_accesses: v[6],
            tag_accesses: v[7],
            invalidations: v[8],
            l2_evictions: v[9],
            search_retries: v[10],
            step1_hits: v[11],
            step2_hits: v[12],
            step1_latency_sum: v[13],
            step2_latency_sum: v[14],
            replicas_created: v[15],
            noc_hop_cycles: v[16],
            pillar_wait_cycles: v[17],
            resource_queue_cycles: v[18],
            l2_service_cycles: v[19],
            mem_wait_cycles: v[20],
        }
    }
}

impl Checkpoint for Counters {
    fn save(&self, w: &mut ByteWriter) {
        for v in self.as_array() {
            w.u64(v);
        }
    }

    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        let mut v = [0u64; 21];
        for slot in &mut v {
            *slot = r.u64()?;
        }
        *self = Counters::from_array(v);
        Ok(())
    }
}

/// The result of one simulation run (one scheme × one benchmark).
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Scheme simulated.
    pub scheme: Scheme,
    /// Benchmark name.
    pub benchmark: String,
    /// Cycles in the measurement window.
    pub cycles: u64,
    /// Instructions retired across all cores in the window.
    pub instructions: u64,
    /// Number of cores.
    pub num_cpus: u32,
    /// Counter deltas over the window.
    pub counters: Counters,
    /// Network counters (whole run, dominated by the window).
    pub network: NetworkStats,
    /// Flits carried by the vertical buses (whole run).
    pub bus_transfers: u64,
    /// Cycles a bus had more than one waiting client (whole run).
    pub bus_contention_cycles: u64,
}

impl RunReport {
    /// Average L2 hit latency in cycles — the paper's Figures 13/16/17/18
    /// metric.
    pub fn avg_l2_hit_latency(&self) -> f64 {
        if self.counters.l2_hits == 0 {
            0.0
        } else {
            self.counters.hit_latency_sum as f64 / self.counters.l2_hits as f64
        }
    }

    /// Average per-core IPC — the paper's Figure 15 metric.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64 / f64::from(self.num_cpus)
        }
    }

    /// L2 miss rate over the window.
    pub fn l2_miss_rate(&self) -> f64 {
        let total = self.counters.l2_hits + self.counters.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.counters.l2_misses as f64 / total as f64
        }
    }

    /// Migrations per completed L2 transaction — the paper's Figure 14
    /// metric before normalisation.
    pub fn migrations_per_transaction(&self) -> f64 {
        if self.counters.l2_transactions == 0 {
            0.0
        } else {
            self.counters.migrations as f64 / self.counters.l2_transactions as f64
        }
    }

    /// Mean latency of hits found in search step 1.
    pub fn avg_step1_latency(&self) -> f64 {
        if self.counters.step1_hits == 0 {
            0.0
        } else {
            self.counters.step1_latency_sum as f64 / self.counters.step1_hits as f64
        }
    }

    /// Mean latency of hits found in the step-2 multicast.
    pub fn avg_step2_latency(&self) -> f64 {
        if self.counters.step2_hits == 0 {
            0.0
        } else {
            self.counters.step2_latency_sum as f64 / self.counters.step2_hits as f64
        }
    }

    /// Mean cycles per completed transaction spent in each attribution
    /// phase, in [`Phase::ALL`](crate::txn::Phase::ALL) order. The five
    /// means sum to the mean end-to-end transaction latency.
    pub fn latency_breakdown(&self) -> [f64; 5] {
        let n = self.counters.l2_transactions;
        self.counters
            .phase_cycles()
            .map(|c| if n == 0 { 0.0 } else { c as f64 / n as f64 })
    }

    /// Activity counts for the energy model.
    pub fn activity(&self) -> ActivityCounts {
        ActivityCounts {
            flit_hops: self.network.flit_hops,
            bus_transfers: self.bus_transfers,
            bank_accesses: self.counters.bank_accesses,
            tag_accesses: self.counters.tag_accesses,
        }
    }

    /// L2 memory-system energy over the window.
    pub fn energy(&self) -> EnergyBreakdown {
        EnergyModel::default().estimate(&self.activity())
    }

    /// A stable 64-bit digest of everything a run can disagree on —
    /// every counter, every latency sum, the full network statistics —
    /// hashed field by field via [`nim_types::FxHasher`] (not SipHash,
    /// so the value is identical across platforms and toolchains, and
    /// not `Debug`-formatted, so cosmetic formatting changes cannot
    /// shift it). Two runs of the same cell must produce the same
    /// fingerprint; the `scale` experiment, the snapshot-equivalence
    /// suite, and the CI topology/shards matrix gate on it.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::Hasher as _;
        let mut h = nim_types::FxHasher::default();
        h.write(self.scheme.label().as_bytes());
        h.write_u8(0xff);
        h.write(self.benchmark.as_bytes());
        h.write_u8(0xff);
        h.write_u64(self.cycles);
        h.write_u64(self.instructions);
        h.write_u32(self.num_cpus);
        for v in self.counters.as_array() {
            h.write_u64(v);
        }
        let n = &self.network;
        for v in [
            n.packets_sent,
            n.packets_delivered,
            n.total_latency,
            n.max_latency,
            n.total_hops,
            n.flit_hops,
        ] {
            h.write_u64(v);
        }
        for arr in [
            &n.flit_hops_by_class,
            &n.delivered_by_class,
            &n.latency_by_class,
        ] {
            for &v in arr {
                h.write_u64(v);
            }
        }
        h.write_u64(n.bus_transfers);
        h.write_u64(n.switch_contention);
        for &b in n.latency_histogram.buckets() {
            h.write_u64(b);
        }
        h.write_u64(self.bus_transfers);
        h.write_u64(self.bus_contention_cycles);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            scheme: Scheme::CmpDnuca3d,
            benchmark: "swim".into(),
            cycles: 1000,
            instructions: 4000,
            num_cpus: 8,
            counters: Counters {
                l2_transactions: 100,
                l2_hits: 80,
                l2_misses: 20,
                hit_latency_sum: 2400,
                miss_latency_sum: 8000,
                migrations: 10,
                bank_accesses: 110,
                tag_accesses: 700,
                invalidations: 5,
                l2_evictions: 3,
                search_retries: 0,
                step1_hits: 60,
                step2_hits: 20,
                step1_latency_sum: 1500,
                step2_latency_sum: 900,
                replicas_created: 0,
                noc_hop_cycles: 5000,
                pillar_wait_cycles: 400,
                resource_queue_cycles: 600,
                l2_service_cycles: 1400,
                mem_wait_cycles: 3000,
            },
            network: NetworkStats::default(),
            bus_transfers: 50,
            bus_contention_cycles: 4,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert!((r.avg_l2_hit_latency() - 30.0).abs() < 1e-12);
        assert!((r.ipc() - 0.5).abs() < 1e-12);
        assert!((r.l2_miss_rate() - 0.2).abs() < 1e-12);
        assert!((r.migrations_per_transaction() - 0.1).abs() < 1e-12);
        assert!(r.energy().total_j() > 0.0);
    }

    #[test]
    fn breakdown_means_sum_to_the_mean_latency() {
        let r = report();
        assert_eq!(r.latency_breakdown(), [50.0, 4.0, 6.0, 14.0, 30.0]);
        let total: u64 = r.counters.phase_cycles().iter().sum();
        assert_eq!(
            total,
            r.counters.hit_latency_sum + r.counters.miss_latency_sum
        );
    }

    #[test]
    fn counter_deltas_subtract_fieldwise() {
        let a = report().counters;
        let mut b = a;
        b.l2_transactions += 5;
        b.hit_latency_sum += 100;
        let d = b.minus(&a);
        assert_eq!(d.l2_transactions, 5);
        assert_eq!(d.hit_latency_sum, 100);
        assert_eq!(d.migrations, 0);
    }

    #[test]
    fn counters_checkpoint_round_trips() {
        let a = report().counters;
        let mut w = ByteWriter::new();
        a.save(&mut w);
        let bytes = w.into_bytes();
        let mut b = Counters::default();
        let mut r = ByteReader::new(&bytes);
        b.restore(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(a, b);
        // Truncated bytes error instead of panicking.
        let mut r = ByteReader::new(&bytes[..bytes.len() - 1]);
        assert!(Counters::default().restore(&mut r).is_err());
    }

    /// Pins the fingerprint of a fully populated report to a golden
    /// value. The fingerprint is a cross-run contract (CI matrices and
    /// snapshot-equivalence gate on it), so any change to the hashed
    /// field set or their order must be deliberate — update the
    /// constant only when the fingerprint definition itself changes.
    #[test]
    fn fingerprint_matches_the_pinned_golden_value() {
        let mut r = report();
        r.network.packets_sent = 12;
        r.network.packets_delivered = 11;
        r.network.total_latency = 340;
        r.network.max_latency = 77;
        r.network.total_hops = 56;
        r.network.flit_hops = 200;
        r.network.flit_hops_by_class = [50, 60, 70, 20];
        r.network.delivered_by_class = [3, 4, 3, 1];
        r.network.latency_by_class = [90, 100, 110, 40];
        r.network.bus_transfers = 9;
        r.network.switch_contention = 2;
        r.network.latency_histogram.record(33);
        assert_eq!(r.fingerprint(), GOLDEN_FINGERPRINT);
    }

    const GOLDEN_FINGERPRINT: u64 = 17883867597365377399;

    #[test]
    fn fingerprint_distinguishes_every_hashed_field() {
        let base = report().fingerprint();
        let mut r = report();
        r.counters.mem_wait_cycles += 1;
        assert_ne!(r.fingerprint(), base);
        let mut r = report();
        r.network.latency_histogram.record(5);
        assert_ne!(r.fingerprint(), base);
        let mut r = report();
        r.bus_contention_cycles += 1;
        assert_ne!(r.fingerprint(), base);
        let mut r = report();
        r.benchmark.push('x');
        assert_ne!(r.fingerprint(), base);
    }

    #[test]
    fn empty_windows_do_not_divide_by_zero() {
        let mut r = report();
        r.counters = Counters::default();
        r.cycles = 0;
        assert_eq!(r.avg_l2_hit_latency(), 0.0);
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.l2_miss_rate(), 0.0);
        assert_eq!(r.migrations_per_transaction(), 0.0);
    }
}
