//! Hand-rolled versioned binary codec for simulator snapshots.
//!
//! Every stateful crate serializes its live state through [`ByteWriter`]
//! and [`ByteReader`] — fixed-width little-endian primitives wrapped in
//! length-prefixed, individually versioned *sections*. The format is
//! deliberately tiny (no external dependencies; the build is offline)
//! and explicit: a snapshot is a magic string, a format version, and a
//! sequence of tagged sections, each of which can evolve independently
//! by bumping its section version.
//!
//! Versioning rules:
//!
//! * The top-level [`SNAPSHOT_MAGIC`] / [`SNAPSHOT_VERSION`] pair gates
//!   whole-file compatibility. Readers reject files whose version is
//!   newer than what they understand with
//!   [`CodecError::UnsupportedVersion`] instead of misparsing them.
//! * Each section carries its own `u16` version. A reader that finds a
//!   section version above what it supports rejects the file the same
//!   way; older versions may be accepted by sections that know how to
//!   upgrade.
//! * Sections are length-prefixed so a reader can verify it consumed
//!   exactly the bytes the writer produced ([`SectionReader::finish`]) —
//!   a mismatch means a field was added on one side only and surfaces
//!   as [`CodecError::Corrupt`] rather than silent state skew.
//!
//! The [`Checkpoint`] trait is the seam each crate implements for its
//! live state: `save` appends to a writer, `restore` rebuilds in place
//! from a reader positioned at the matching bytes.

use core::error::Error;
use core::fmt;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"NIMSNAP\0";

/// Current top-level snapshot format version.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Error produced while decoding snapshot bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the expected bytes.
    UnexpectedEof {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The file (or a section) was written by a newer format version.
    UnsupportedVersion {
        /// Version found in the input.
        found: u16,
        /// Highest version this reader supports.
        supported: u16,
    },
    /// The bytes are structurally inconsistent (bad tag, bad enum
    /// discriminant, section length mismatch, ...).
    Corrupt(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {remaining} remain"
                )
            }
            CodecError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            CodecError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "snapshot version {found} is newer than supported version {supported}"
                )
            }
            CodecError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl Error for CodecError {}

/// Append-only buffer of little-endian encoded state.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes the snapshot magic and top-level format version.
    pub fn header(&mut self) {
        self.buf.extend_from_slice(&SNAPSHOT_MAGIC);
        self.u16(SNAPSHOT_VERSION);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `Option<u64>` as a presence byte plus the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(u32::try_from(s.len()).expect("string too long for snapshot"));
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn u64_slice(&mut self, vs: &[u64]) {
        self.u32(u32::try_from(vs.len()).expect("slice too long for snapshot"));
        for &v in vs {
            self.u64(v);
        }
    }

    /// Appends raw bytes with no length prefix.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Opens a tagged, versioned, length-prefixed section. Returns a
    /// handle that must be passed to [`ByteWriter::end_section`] once
    /// the section body is written.
    pub fn begin_section(&mut self, tag: &str, version: u16) -> SectionHandle {
        self.str(tag);
        self.u16(version);
        let len_at = self.buf.len();
        self.u32(0); // patched by end_section
        SectionHandle { len_at }
    }

    /// Closes a section opened by [`ByteWriter::begin_section`],
    /// patching its length prefix.
    ///
    /// # Panics
    ///
    /// Panics if sections are closed out of order (the handle's length
    /// slot is not behind the current position).
    pub fn end_section(&mut self, handle: SectionHandle) {
        let body = self.buf.len() - handle.len_at - 4;
        let len = u32::try_from(body).expect("section too long for snapshot");
        self.buf[handle.len_at..handle.len_at + 4].copy_from_slice(&len.to_le_bytes());
    }
}

/// Handle returned by [`ByteWriter::begin_section`].
#[derive(Debug)]
#[must_use = "sections must be closed with end_section"]
pub struct SectionHandle {
    len_at: usize,
}

/// Cursor over encoded snapshot bytes.
#[derive(Clone, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { buf: bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Checks the snapshot magic and top-level version.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadMagic`] if the magic does not match,
    /// [`CodecError::UnsupportedVersion`] if the file is newer than
    /// [`SNAPSHOT_VERSION`].
    pub fn header(&mut self) -> Result<u16, CodecError> {
        let magic = self.take(SNAPSHOT_MAGIC.len())?;
        if magic != SNAPSHOT_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = self.u16()?;
        if version > SNAPSHOT_VERSION {
            return Err(CodecError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        Ok(version)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if the input is exhausted (as for
    /// all the primitive readers below).
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// See [`ByteReader::u8`].
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// See [`ByteReader::u8`].
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// See [`ByteReader::u8`].
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// See [`ByteReader::u8`].
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    ///
    /// # Errors
    ///
    /// See [`ByteReader::u8`].
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`, rejecting bytes other than 0 and 1.
    ///
    /// # Errors
    ///
    /// [`CodecError::Corrupt`] on a non-boolean byte.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Corrupt("non-boolean byte")),
        }
    }

    /// Reads a `usize` (encoded as `u64`).
    ///
    /// # Errors
    ///
    /// [`CodecError::Corrupt`] if the value does not fit a `usize`.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::Corrupt("usize overflow"))
    }

    /// Reads an `Option<u64>` written by [`ByteWriter::opt_u64`].
    ///
    /// # Errors
    ///
    /// [`CodecError::Corrupt`] on a bad presence byte.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(CodecError::Corrupt("bad option tag")),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`CodecError::Corrupt`] on invalid UTF-8.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Corrupt("invalid UTF-8"))
    }

    /// Reads a length-prefixed `u64` vector.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if the input is shorter than the
    /// declared length.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, CodecError> {
        let len = self.u32()? as usize;
        if self.remaining() < len.saturating_mul(8) {
            return Err(CodecError::UnexpectedEof {
                needed: len * 8,
                remaining: self.remaining(),
            });
        }
        (0..len).map(|_| self.u64()).collect()
    }

    /// Opens the next section, checking its tag and version ceiling.
    /// Returns a bounded reader over the section body; the outer
    /// reader's cursor advances past the whole section.
    ///
    /// # Errors
    ///
    /// [`CodecError::Corrupt`] if the tag mismatches,
    /// [`CodecError::UnsupportedVersion`] if the section version
    /// exceeds `max_version`.
    pub fn section(
        &mut self,
        tag: &str,
        max_version: u16,
    ) -> Result<SectionReader<'a>, CodecError> {
        let found = self.str()?;
        if found != tag {
            return Err(CodecError::Corrupt("section tag mismatch"));
        }
        let version = self.u16()?;
        if version > max_version {
            return Err(CodecError::UnsupportedVersion {
                found: version,
                supported: max_version,
            });
        }
        let len = self.u32()? as usize;
        let body = self.take(len)?;
        Ok(SectionReader {
            version,
            reader: ByteReader::new(body),
        })
    }
}

/// A bounded reader over one section's body.
#[derive(Debug)]
pub struct SectionReader<'a> {
    /// The section version the writer recorded.
    pub version: u16,
    /// Reader over exactly the section body.
    pub reader: ByteReader<'a>,
}

impl SectionReader<'_> {
    /// Asserts the section body was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`CodecError::Corrupt`] if bytes remain — a writer/reader field
    /// mismatch.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.reader.remaining() != 0 {
            return Err(CodecError::Corrupt("section has trailing bytes"));
        }
        Ok(())
    }
}

/// The checkpoint seam every stateful component implements: `save`
/// appends the component's live state, `restore` rebuilds it in place
/// from the matching bytes on a freshly constructed component.
pub trait Checkpoint {
    /// Serializes live state into `w`.
    fn save(&self, w: &mut ByteWriter);

    /// Restores live state from `r`.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the bytes are truncated, corrupt, or
    /// from an unsupported version.
    fn restore(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(1 << 40);
        w.i64(-5);
        w.f64(1.25);
        w.bool(true);
        w.bool(false);
        w.usize(99);
        w.opt_u64(Some(8));
        w.opt_u64(None);
        w.str("hello");
        w.u64_slice(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.i64().unwrap(), -5);
        assert_eq!(r.f64().unwrap(), 1.25);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.usize().unwrap(), 99);
        assert_eq!(r.opt_u64().unwrap(), Some(8));
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.u64_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn header_round_trips_and_rejects() {
        let mut w = ByteWriter::new();
        w.header();
        let bytes = w.into_bytes();
        assert_eq!(ByteReader::new(&bytes).header().unwrap(), SNAPSHOT_VERSION);

        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert_eq!(ByteReader::new(&bad).header(), Err(CodecError::BadMagic));

        let mut newer = bytes;
        newer[8] = 0xff; // version low byte
        assert!(matches!(
            ByteReader::new(&newer).header(),
            Err(CodecError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn sections_frame_their_bodies() {
        let mut w = ByteWriter::new();
        let s = w.begin_section("cores", 3);
        w.u64(42);
        w.end_section(s);
        let s = w.begin_section("l2", 1);
        w.str("after");
        w.end_section(s);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        let mut sec = r.section("cores", 3).unwrap();
        assert_eq!(sec.version, 3);
        assert_eq!(sec.reader.u64().unwrap(), 42);
        sec.finish().unwrap();
        let mut sec = r.section("l2", 5).unwrap();
        assert_eq!(sec.reader.str().unwrap(), "after");
        sec.finish().unwrap();
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn sections_reject_mismatches() {
        let mut w = ByteWriter::new();
        let s = w.begin_section("cores", 2);
        w.u64(42);
        w.end_section(s);
        let bytes = w.into_bytes();

        assert_eq!(
            ByteReader::new(&bytes).section("caches", 2).unwrap_err(),
            CodecError::Corrupt("section tag mismatch")
        );
        assert!(matches!(
            ByteReader::new(&bytes).section("cores", 1).unwrap_err(),
            CodecError::UnsupportedVersion {
                found: 2,
                supported: 1
            }
        ));
        // Under-consumed section body.
        let sec = ByteReader::new(&bytes).section("cores", 2).unwrap();
        assert_eq!(
            sec.finish().unwrap_err(),
            CodecError::Corrupt("section has trailing bytes")
        );
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = ByteWriter::new();
        let s = w.begin_section("cores", 1);
        w.u64_slice(&[1, 2, 3, 4]);
        w.end_section(s);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            match r.section("cores", 1) {
                Err(_) => {}
                Ok(mut sec) => {
                    // The section parsed but the body must fail.
                    assert!(sec.reader.u64_vec().is_err() || cut == bytes.len());
                }
            }
        }
    }

    #[test]
    fn bad_bytes_do_not_panic() {
        let mut r = ByteReader::new(&[2]);
        assert_eq!(r.bool(), Err(CodecError::Corrupt("non-boolean byte")));
        let mut r = ByteReader::new(&[5, 0, 0, 0, b'a']);
        assert!(r.str().is_err(), "declared length past the end");
        let mut r = ByteReader::new(&[0xff, 0xff, 0xff, 0xff]);
        assert!(r.u64_vec().is_err(), "absurd length must not allocate");
    }
}
