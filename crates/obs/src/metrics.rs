//! Named metrics registry: counters, gauges, and latency histograms.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::LatencyHistogram;
use crate::json::{json_f64, push_json_string};

/// A single named metric.
#[derive(Clone, Debug, PartialEq)]
pub enum Metric {
    /// Monotonic count (events, flits, hits…).
    Counter(u64),
    /// Point-in-time value (occupancy ratio, temperature…).
    Gauge(f64),
    /// Power-of-two latency distribution.
    Histogram(LatencyHistogram),
}

impl Metric {
    /// The metric as a scalar for sampling (histograms report count).
    pub fn scalar(&self) -> f64 {
        match self {
            Metric::Counter(v) => *v as f64,
            Metric::Gauge(v) => *v,
            Metric::Histogram(h) => h.count() as f64,
        }
    }
}

/// A registry of named metrics.
///
/// Names are hierarchical by convention, slash-separated — e.g.
/// `noc/link_util/2,1,0`, `pillar/3/occupancy`, `l2/hits/0/5`. BTreeMap
/// storage keeps exports deterministically ordered.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// Adds `delta` to a counter, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        match self.metrics.get_mut(name) {
            Some(Metric::Counter(v)) => *v += delta,
            Some(other) => *other = Metric::Counter(delta),
            None => {
                self.metrics
                    .insert(name.to_string(), Metric::Counter(delta));
            }
        }
    }

    /// Sets a counter to an absolute value.
    pub fn counter_set(&mut self, name: &str, value: u64) {
        self.metrics
            .insert(name.to_string(), Metric::Counter(value));
    }

    /// Sets a gauge.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.metrics.insert(name.to_string(), Metric::Gauge(value));
    }

    /// Records one sample into a histogram, creating it if absent.
    pub fn histogram_record(&mut self, name: &str, sample: u64) {
        match self.metrics.get_mut(name) {
            Some(Metric::Histogram(h)) => h.record(sample),
            _ => {
                let mut h = LatencyHistogram::default();
                h.record(sample);
                self.metrics.insert(name.to_string(), Metric::Histogram(h));
            }
        }
    }

    /// Stores a pre-built histogram (e.g. one accumulated elsewhere).
    pub fn histogram_set(&mut self, name: &str, h: LatencyHistogram) {
        self.metrics.insert(name.to_string(), Metric::Histogram(h));
    }

    /// Stores a metric of any kind under `name` (snapshot restore).
    pub fn set(&mut self, name: String, metric: Metric) {
        self.metrics.insert(name, metric);
    }

    /// Looks up one metric.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// A counter's value, or 0 if absent / not a counter.
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(Metric::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// All metrics, name-ordered.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Metrics whose name starts with `prefix`, name-ordered.
    pub fn with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a Metric)> {
        self.iter().filter(move |(k, _)| k.starts_with(prefix))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Appends the registry as one JSON object.
    pub fn write_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        for (name, metric) in &self.metrics {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n  ");
            push_json_string(out, name);
            out.push(':');
            match metric {
                Metric::Counter(v) => {
                    let _ = write!(out, "{v}");
                }
                Metric::Gauge(v) => out.push_str(&json_f64(*v)),
                Metric::Histogram(h) => {
                    let _ = write!(out, "{{\"count\":{},\"buckets\":[", h.count());
                    for (i, b) in h.buckets().iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{b}");
                    }
                    let (p50, p95, p99) = h.percentiles();
                    let _ = write!(out, "],\"p50\":{p50},\"p95\":{p95},\"p99\":{p99}}}");
                }
            }
        }
        out.push_str("\n}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut r = MetricsRegistry::default();
        r.counter_add("a/hits", 2);
        r.counter_add("a/hits", 3);
        r.gauge_set("a/occ", 0.5);
        r.gauge_set("a/occ", 0.75);
        assert_eq!(r.counter("a/hits"), 5);
        assert_eq!(r.get("a/occ"), Some(&Metric::Gauge(0.75)));
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn prefix_scan_is_ordered() {
        let mut r = MetricsRegistry::default();
        r.counter_add("link/2", 1);
        r.counter_add("link/1", 1);
        r.counter_add("other", 1);
        let names: Vec<&str> = r.with_prefix("link/").map(|(k, _)| k).collect();
        assert_eq!(names, vec!["link/1", "link/2"]);
    }

    #[test]
    fn json_export_covers_all_kinds() {
        let mut r = MetricsRegistry::default();
        r.counter_add("c", 7);
        r.gauge_set("g", 1.5);
        r.histogram_record("h", 12);
        let mut out = String::new();
        r.write_json(&mut out);
        assert!(out.contains("\"c\":7"));
        assert!(out.contains("\"g\":1.5"));
        assert!(out.contains("\"count\":1"));
        assert!(out.contains("\"p50\":16"));
        assert!(out.contains("\"p95\":16"));
        assert!(out.contains("\"p99\":16"));
    }
}
