//! Common vocabulary types for the network-in-memory simulator.
//!
//! This crate holds the identifiers, geometry, address arithmetic, time
//! keeping, and system configuration shared by every other crate in the
//! workspace. It has no dependencies and sits at the bottom of the
//! dependency DAG.
//!
//! # Overview
//!
//! * [`id`] — strongly-typed identifiers ([`CpuId`], [`ClusterId`], ...).
//! * [`geom`] — 3D coordinates on the stacked mesh and port directions.
//! * [`addr`] — physical addresses and NUCA line-address decomposition.
//! * [`time`] — the [`Cycle`] newtype used for all simulated time.
//! * [`config`] — [`SystemConfig`], the paper's Table 4 parameters.
//! * [`hash`] — [`FxHashMap`], the de-SipHashed map for hot-path keys.
//! * [`codec`] — the versioned binary snapshot codec and [`Checkpoint`]
//!   seam.
//!
//! # Examples
//!
//! ```
//! use nim_types::config::SystemConfig;
//!
//! let cfg = SystemConfig::default();
//! assert_eq!(cfg.num_cpus, 8);
//! assert_eq!(cfg.l2.total_bytes(), 16 * 1024 * 1024);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod codec;
pub mod config;
pub mod geom;
pub mod hash;
pub mod id;
pub mod time;
pub mod trace;

pub use addr::{Address, LineAddr};
pub use codec::{ByteReader, ByteWriter, Checkpoint, CodecError};
pub use config::{ConfigError, L1Config, L2Config, NetworkConfig, PillarPlacement, SystemConfig};
pub use geom::{Coord, Dir};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use id::{BankId, ClusterId, CpuId, PacketId, PillarId};
pub use time::Cycle;
pub use trace::{AccessKind, TraceOp};
