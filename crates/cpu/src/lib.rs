//! In-order processor cores with private, split, write-through L1 caches.
//!
//! One [`InOrderCore`] models a single-issue SPARC-like core as in the
//! paper's Table 4: it executes one instruction per cycle, blocks on L1
//! load/fetch misses until the shared L2 answers, and forwards every
//! store to the L2 through a small store buffer (write-through L1).
//! The surrounding system (`nim-core`) carries the resulting
//! [`MemRequest`]s over the on-chip network and calls back
//! [`InOrderCore::data_returned`] / [`InOrderCore::store_completed`].
//!
//! # Examples
//!
//! ```
//! use nim_cpu::{CoreAction, InOrderCore};
//! use nim_types::{AccessKind, Address, CpuId, L1Config, TraceOp};
//!
//! let mut core = InOrderCore::new(CpuId(0), &L1Config::default());
//! let mut ops = vec![TraceOp { gap: 0, kind: AccessKind::Read, addr: Address(0x40) }]
//!     .into_iter();
//! match core.tick(&mut || ops.next()) {
//!     CoreAction::Request(req) => {
//!         // ... the L2 answers some cycles later ...
//!         core.data_returned(req.addr);
//!     }
//!     _ => unreachable!("a cold L1 misses"),
//! }
//! assert_eq!(core.stats().instructions, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod core;
mod l1;

pub use crate::core::{CoreAction, CoreStats, InOrderCore, MemRequest, STORE_BUFFER_DEPTH};
pub use crate::l1::{L1Cache, L1Stats};
