//! Error types for system construction and simulation runs.

use core::error::Error;
use core::fmt;

use nim_topology::{PlacementError, TopologyError};
use nim_types::ConfigError;

/// Error building a [`System`](crate::System).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// The configuration is inconsistent.
    Config(ConfigError),
    /// The chip geometry could not be derived.
    Topology(TopologyError),
    /// CPUs could not be seated.
    Placement(PlacementError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Config(e) => write!(f, "invalid configuration: {e}"),
            BuildError::Topology(e) => write!(f, "invalid topology: {e}"),
            BuildError::Placement(e) => write!(f, "CPU placement failed: {e}"),
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::Config(e) => Some(e),
            BuildError::Topology(e) => Some(e),
            BuildError::Placement(e) => Some(e),
        }
    }
}

impl From<ConfigError> for BuildError {
    fn from(e: ConfigError) -> Self {
        BuildError::Config(e)
    }
}

impl From<TopologyError> for BuildError {
    fn from(e: TopologyError) -> Self {
        BuildError::Topology(e)
    }
}

impl From<PlacementError> for BuildError {
    fn from(e: PlacementError) -> Self {
        BuildError::Placement(e)
    }
}

/// Error during a simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// No L2 transaction completed for an implausibly long time — a
    /// protocol deadlock or livelock.
    Stalled {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Transactions completed before the stall.
        completed: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Stalled { cycle, completed } => write!(
                f,
                "simulation stalled at cycle {cycle} after {completed} transactions"
            ),
        }
    }
}

impl Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_cause() {
        let e = BuildError::Config(ConfigError::Zero("num_cpus"));
        assert!(e.to_string().contains("num_cpus"));
        let e = RunError::Stalled {
            cycle: 10,
            completed: 3,
        };
        assert!(e.to_string().contains("cycle 10"));
    }
}
