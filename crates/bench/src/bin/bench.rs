//! Machine-readable parallel-sweep benchmark.
//!
//! Runs the Figure-13 grid (every benchmark × every scheme) twice — once
//! with one worker, once with `NIM_JOBS` (default: all cores, clamped to
//! the cores actually available) — and writes `BENCH_sweep.json` with
//! cycles simulated, wall seconds, cycles/sec, and the jobs=N speedup
//! over jobs=1, plus a `deterministic` flag asserting the two sweeps
//! produced identical reports. A second section times one *single* run
//! sequentially and with the network cut into 2 shards
//! (`SystemBuilder::shards`), reporting `cycles_per_sec_sharded` and
//! asserting the sharded report is bit-identical. A third section runs
//! the same cell on the ideal contention-free fabric
//! (`SystemBuilder::fabric`), reporting `cycles_per_sec_ideal_fabric` —
//! skipping per-flit simulation must beat the cycle-accurate NoC on
//! wall-clock throughput, and CI gates on it.
//!
//! ```sh
//! NIM_SCALE=quick NIM_JOBS=4 cargo run --release -p nim-bench --bin bench
//! ```
//!
//! The output path defaults to `BENCH_sweep.json` in the current
//! directory; pass a path as the first argument to override it.

use std::error::Error;
use std::fmt::Write as _;
use std::time::Instant;

use nim_bench::scale_from_env;
use nim_core::experiments::{run_cells, ExperimentScale, SweepSpec};
use nim_core::parallel::{configured_jobs, set_jobs_override};
use nim_core::{FabricKind, RunReport, Scheme, SystemBuilder};
use nim_workload::BenchmarkProfile;

/// Pulls `"cycles_per_sec_1": <number>` out of a previously written
/// sweep JSON, so successive runs record before/after throughput
/// without needing a JSON dependency.
fn prev_cycles_per_sec(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"cycles_per_sec_1\":";
    let rest = text[text.find(key)? + key.len()..].trim_start();
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

fn timed_sweep(
    jobs: usize,
    benchmarks: &[BenchmarkProfile],
    scale: ExperimentScale,
    specs: &[SweepSpec],
) -> Result<(Vec<RunReport>, f64), Box<dyn Error>> {
    set_jobs_override(Some(jobs));
    let start = Instant::now();
    let reports = run_cells(benchmarks, scale, specs);
    let wall = start.elapsed().as_secs_f64();
    set_jobs_override(None);
    Ok((reports?, wall))
}

/// Runs one 2-layer CmpDnuca3d cell with the network cut into `shards`
/// regions on the given interconnect substrate, returning the report and
/// the wall time of `System::run` alone (build and prewarm excluded).
fn timed_single_run(
    scale: ExperimentScale,
    profile: &BenchmarkProfile,
    shards: usize,
    fabric: FabricKind,
) -> Result<(RunReport, f64), Box<dyn Error>> {
    let mut sys = SystemBuilder::new(Scheme::CmpDnuca3d)
        .seed(42)
        .warmup_transactions(scale.warmup)
        .sampled_transactions(scale.sample)
        .shards(shards)
        .fabric(fabric)
        .build()?;
    let start = Instant::now();
    let report = sys.run(profile)?;
    Ok((report, start.elapsed().as_secs_f64()))
}

fn main() -> Result<(), Box<dyn Error>> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sweep.json".to_string());
    let scale = scale_from_env(true);
    let scale_name = if scale == ExperimentScale::quick() {
        "quick"
    } else {
        "full"
    };
    let benchmarks = BenchmarkProfile::all();
    let mut specs = Vec::new();
    for bi in 0..benchmarks.len() {
        for &scheme in &Scheme::ALL {
            specs.push(SweepSpec::new(scheme, bi));
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Oversubscribing a small container (say NIM_JOBS=4 on one core)
    // only adds scheduling overhead — the sweep is CPU-bound, so more
    // workers than cores is strictly a loss. Clamp rather than obey.
    let jobs = configured_jobs().min(cores);
    eprintln!(
        "# bench: {} cells at scale {scale_name}, jobs=1 then jobs={jobs} ({cores} cores)",
        specs.len()
    );

    let prev_cps_1 = prev_cycles_per_sec(&out_path);
    let (baseline, wall_1) = timed_sweep(1, &benchmarks, scale, &specs)?;
    let (parallel, wall_n) = timed_sweep(jobs, &benchmarks, scale, &specs)?;

    // RunReport intentionally has no PartialEq; the Debug form covers
    // every field, so equal strings mean bit-identical sweeps.
    let deterministic = format!("{baseline:?}") == format!("{parallel:?}");
    let cycles: u64 = parallel.iter().map(|r| r.cycles).sum();
    let cps_1 = cycles as f64 / wall_1.max(1e-9);
    let cps_n = cycles as f64 / wall_n.max(1e-9);
    let speedup = wall_1 / wall_n.max(1e-9);

    // Single-run sharding: the same simulation with its network cut into
    // 2 layer shards advancing concurrently between pillar grants.
    eprintln!("# bench: single-run sharding, shards=1 then shards=2");
    let sharded_profile = BenchmarkProfile::art();
    let (seq_report, wall_s1) = timed_single_run(scale, &sharded_profile, 1, FabricKind::Sim)?;
    let (sh_report, wall_s2) = timed_single_run(scale, &sharded_profile, 2, FabricKind::Sim)?;
    let sharded_deterministic = format!("{seq_report:?}") == format!("{sh_report:?}");
    let cps_s1 = seq_report.cycles as f64 / wall_s1.max(1e-9);
    let cps_sharded = sh_report.cycles as f64 / wall_s2.max(1e-9);
    let sharded_speedup = wall_s1 / wall_s2.max(1e-9);

    // Ideal contention-free fabric: the same cell with every packet's
    // latency computed analytically instead of simulated flit by flit.
    eprintln!("# bench: single-run ideal fabric, shards=1");
    let (ideal_report, wall_ideal) =
        timed_single_run(scale, &sharded_profile, 1, FabricKind::Ideal)?;
    let cps_ideal = ideal_report.cycles as f64 / wall_ideal.max(1e-9);
    let ideal_fabric_speedup = cps_ideal / cps_s1.max(1e-9);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"scale\": \"{scale_name}\",");
    let _ = writeln!(json, "  \"warmup_transactions\": {},", scale.warmup);
    let _ = writeln!(json, "  \"sampled_transactions\": {},", scale.sample);
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"cells\": {},", specs.len());
    let _ = writeln!(json, "  \"cycles_simulated\": {cycles},");
    let _ = writeln!(json, "  \"wall_secs_1\": {wall_1:.6},");
    let _ = writeln!(json, "  \"wall_secs_n\": {wall_n:.6},");
    let _ = writeln!(json, "  \"cycles_per_sec_1\": {cps_1:.1},");
    let _ = writeln!(json, "  \"cycles_per_sec_n\": {cps_n:.1},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.3},");
    let _ = writeln!(json, "  \"cycles_per_sec_sharded_1\": {cps_s1:.1},");
    let _ = writeln!(json, "  \"cycles_per_sec_sharded\": {cps_sharded:.1},");
    let _ = writeln!(json, "  \"sharded_speedup\": {sharded_speedup:.3},");
    let _ = writeln!(
        json,
        "  \"sharded_deterministic\": {sharded_deterministic},"
    );
    let _ = writeln!(json, "  \"cycles_per_sec_ideal_fabric\": {cps_ideal:.1},");
    let _ = writeln!(
        json,
        "  \"ideal_fabric_speedup\": {ideal_fabric_speedup:.3},"
    );
    // Before/after throughput relative to whatever sweep last wrote this
    // file (absent on a first run).
    if let Some(prev) = prev_cps_1 {
        let _ = writeln!(json, "  \"prev_cycles_per_sec_1\": {prev:.1},");
        let _ = writeln!(
            json,
            "  \"speedup_vs_prev\": {:.3},",
            cps_1 / prev.max(1e-9)
        );
    }
    let _ = writeln!(json, "  \"deterministic\": {deterministic}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json)?;
    print!("{json}");
    eprintln!("# wrote {out_path}");
    if !deterministic {
        return Err("parallel sweep diverged from the sequential sweep".into());
    }
    if !sharded_deterministic {
        return Err("sharded run diverged from the sequential run".into());
    }
    Ok(())
}
