//! Regenerates Figures 13–18 of the paper's evaluation (§5.2) and prints
//! them as tables, one series per scheme/configuration.
//!
//! ```sh
//! NIM_SCALE=full cargo run --release -p nim-bench --bin figures
//! ```

use std::error::Error;

use nim_bench::{representative_benchmarks, scale_from_env};
use nim_core::experiments::{
    fig13_l2_latency, fig14_migrations, fig16_cache_size, fig17_pillars, fig18_layers,
};
use nim_core::Scheme;
use nim_workload::BenchmarkProfile;

fn main() -> Result<(), Box<dyn Error>> {
    let scale = scale_from_env(false);
    let all = BenchmarkProfile::all();
    let representative = representative_benchmarks();
    eprintln!(
        "# scale: warmup {} / sample {} transactions per run; {} sweep jobs",
        scale.warmup,
        scale.sample,
        nim_core::parallel::configured_jobs()
    );

    println!("## Figure 13 — average L2 hit latency (cycles)");
    println!("## Figure 15 — IPC (same runs)");
    println!(
        "{:<10} {:>12} {:>14} {:>14} {:>14}   | IPC per scheme",
        "benchmark", "CMP-DNUCA", "CMP-DNUCA-2D", "CMP-SNUCA-3D", "CMP-DNUCA-3D"
    );
    let rows = fig13_l2_latency(&all, scale)?;
    for row in &rows {
        let lat: Vec<f64> = Scheme::ALL
            .iter()
            .map(|&s| row.report(s).avg_l2_hit_latency())
            .collect();
        let ipc: Vec<f64> = Scheme::ALL.iter().map(|&s| row.report(s).ipc()).collect();
        println!(
            "{:<10} {:>12.2} {:>14.2} {:>14.2} {:>14.2}   | {:.4} {:.4} {:.4} {:.4}",
            row.benchmark, lat[0], lat[1], lat[2], lat[3], ipc[0], ipc[1], ipc[2], ipc[3]
        );
    }

    println!();
    println!("## Figure 14 — block migrations normalised to CMP-DNUCA-2D");
    println!(
        "{:<10} {:>12} {:>14}",
        "benchmark", "CMP-DNUCA", "CMP-DNUCA-3D"
    );
    for row in fig14_migrations(&all, scale)? {
        println!(
            "{:<10} {:>12.3} {:>14.3}",
            row.benchmark, row.cmp_dnuca, row.cmp_dnuca_3d
        );
    }

    println!();
    println!("## Figure 16 — avg L2 hit latency vs cache size (cycles)");
    println!(
        "{:<10} {:>6} {:>10} {:>10}",
        "benchmark", "L2 MB", "2D", "3D"
    );
    for row in fig16_cache_size(&representative, scale)? {
        println!(
            "{:<10} {:>6} {:>10.2} {:>10.2}",
            row.benchmark, row.l2_mb, row.latency_2d, row.latency_3d
        );
    }

    println!();
    println!("## Figure 17 — impact of the number of pillars (CMP-DNUCA-3D)");
    println!("{:<10} {:>8} {:>10}", "benchmark", "pillars", "latency");
    for row in fig17_pillars(&representative, scale)? {
        println!(
            "{:<10} {:>8} {:>10.2}",
            row.benchmark, row.pillars, row.latency
        );
    }

    println!();
    println!("## Figure 18 — impact of the number of layers (CMP-SNUCA-3D)");
    println!("{:<10} {:>8} {:>10}", "benchmark", "layers", "latency");
    for row in fig18_layers(&representative, scale)? {
        println!(
            "{:<10} {:>8} {:>10.2}",
            row.benchmark, row.layers, row.latency
        );
    }
    Ok(())
}
