//! Dead-cycle elision must be invisible in the results: a run with
//! horizon skipping enabled and the same seeded run forced through the
//! naive one-tick-per-cycle loop (what `NIM_NO_SKIP=1` selects at
//! process level) must agree on every report field, the per-cluster L2
//! hit/miss matrix, the epoch-sample table, and the final cycle.

use std::fmt::Write as _;

use nim_core::{Scheme, SystemBuilder};
use nim_obs::{Obs, ObsConfig};
use nim_types::SystemConfig;
use nim_workload::BenchmarkProfile;

/// Everything a run can disagree on, as one comparable blob.
#[derive(PartialEq, Debug)]
struct Fingerprint {
    report: String,
    final_cycle: u64,
    /// `l2/hits/{local}/{serve}` + `l2/miss_from/{local}` counters.
    hit_matrix: String,
    /// Epoch-sampled rows (cycle-stamped), via the trace export with the
    /// wall-clock-dependent summary line stripped.
    samples: String,
}

fn run_one(
    scheme: Scheme,
    profile: &BenchmarkProfile,
    narrow_bus: bool,
    skip: bool,
) -> Fingerprint {
    let mut cfg = SystemConfig::default();
    if narrow_bus {
        // A 32-bit bus serialises each 128-bit flit over 4 cycles,
        // creating exactly the traffic-in-flight dead spans the horizon
        // skip exists for.
        cfg.network.bus_width_bits = 32;
    }
    let obs = Obs::new(ObsConfig {
        sample_every: 2_000,
        ..ObsConfig::default()
    });
    let mut sys = SystemBuilder::new(scheme)
        .config(cfg)
        .seed(42)
        .warmup_transactions(50)
        .sampled_transactions(400)
        .horizon_skipping(skip)
        .observability(obs.clone())
        .build()
        .expect("system builds");
    let report = sys.run(profile).expect("run completes");
    let final_cycle = sys.network().now().0;
    let hit_matrix = obs
        .with_metrics(|m| {
            let mut s = String::new();
            for (name, metric) in m.with_prefix("l2/hits/") {
                let _ = writeln!(s, "{name} = {metric:?}");
            }
            for (name, metric) in m.with_prefix("l2/miss_from/") {
                let _ = writeln!(s, "{name} = {metric:?}");
            }
            s
        })
        .expect("obs enabled");
    let mut trace = Vec::new();
    obs.export_trace(&mut trace).expect("trace export");
    let samples = String::from_utf8(trace)
        .expect("utf-8 trace")
        .lines()
        .filter(|l| !l.contains("trace_summary"))
        .collect::<Vec<_>>()
        .join("\n");
    Fingerprint {
        // RunReport has no PartialEq; its Debug form covers every field.
        report: format!("{report:?}"),
        final_cycle,
        hit_matrix,
        samples,
    }
}

/// One test fn on purpose: each cell simulates a full (small) run twice,
/// and keeping them serial bounds peak memory in debug CI.
#[test]
fn skipping_matches_naive_per_cycle_mode_bit_for_bit() {
    let benchmarks = [BenchmarkProfile::art(), BenchmarkProfile::swim()];
    let mut cells = Vec::new();
    for profile in &benchmarks {
        for &scheme in &Scheme::ALL {
            cells.push((scheme, profile, false));
        }
    }
    // Narrow-bus variants: serialisation opens in-flight dead spans, so
    // the skip path actually fires on the bus/router horizons rather
    // than only on idle gaps.
    cells.push((Scheme::CmpSnuca3d, &benchmarks[0], true));
    cells.push((Scheme::CmpDnuca3d, &benchmarks[1], true));

    for (scheme, profile, narrow_bus) in cells {
        let naive = run_one(scheme, profile, narrow_bus, false);
        let skipping = run_one(scheme, profile, narrow_bus, true);
        assert_eq!(
            naive, skipping,
            "{scheme:?}/{}/narrow_bus={narrow_bus}: horizon skipping must be \
             bit-identical to the naive per-cycle loop",
            profile.name
        );
    }
}
