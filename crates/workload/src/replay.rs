//! Replaying recorded traces.
//!
//! [`ReplayTrace`] loads a trace written by
//! [`TraceWriter`](crate::TraceWriter) into per-CPU queues and implements
//! [`TraceSource`], so a recorded reference stream can drive the
//! simulator exactly as the synthetic generator does — useful for
//! comparing cache policies on bit-identical inputs, or for driving the
//! system with externally captured traces.

use std::collections::VecDeque;
use std::io::BufRead;

use nim_types::{CpuId, TraceOp};

use crate::generator::{TraceCursor, TraceSource};
use crate::trace_io::{TraceReadError, TraceReader};

/// A fully-loaded trace, ready to replay.
#[derive(Clone, Debug, Default)]
pub struct ReplayTrace {
    queues: Vec<VecDeque<TraceOp>>,
    /// References already served per CPU — the replay's resume cursor.
    consumed: Vec<u64>,
}

impl ReplayTrace {
    /// Loads a trace from any reader (see
    /// [`TRACE_HEADER`](crate::TRACE_HEADER) for the format). Pass
    /// `&mut reader` to keep using the reader afterwards.
    ///
    /// # Errors
    ///
    /// Propagates parse errors from [`TraceReader`].
    pub fn from_reader<R: BufRead>(input: R) -> Result<Self, TraceReadError> {
        let mut reader = TraceReader::new(input)?;
        let mut trace = ReplayTrace::default();
        while let Some((cpu, op)) = reader.next_record()? {
            trace.push(cpu, op);
        }
        Ok(trace)
    }

    /// Appends one reference to a CPU's queue.
    pub fn push(&mut self, cpu: CpuId, op: TraceOp) {
        if self.queues.len() <= cpu.index() {
            self.queues.resize_with(cpu.index() + 1, VecDeque::new);
        }
        self.queues[cpu.index()].push_back(op);
    }

    /// References still queued for one CPU.
    pub fn remaining(&self, cpu: CpuId) -> usize {
        self.queues.get(cpu.index()).map_or(0, VecDeque::len)
    }

    /// Total references still queued.
    pub fn len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Whether every queue is drained.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }

    /// References served so far, per CPU.
    pub fn consumed(&self) -> &[u64] {
        &self.consumed
    }

    /// Skips `counts[c]` references of each CPU `c`'s queue — resuming a
    /// freshly loaded trace at a snapshot's [`TraceCursor::Replay`]
    /// position. Returns `false` (leaving the trace partially advanced)
    /// if a queue is shorter than its requested skip or `counts` names
    /// more CPUs than the trace holds.
    pub fn fast_forward(&mut self, counts: &[u64]) -> bool {
        if counts.len() > self.queues.len() {
            return false;
        }
        for (c, &count) in counts.iter().enumerate() {
            for _ in 0..count {
                if self.next_for(CpuId::from_index(c)).is_none() {
                    return false;
                }
            }
        }
        true
    }
}

impl TraceSource for ReplayTrace {
    fn next_for(&mut self, cpu: CpuId) -> Option<TraceOp> {
        let op = self.queues.get_mut(cpu.index())?.pop_front()?;
        if self.consumed.len() <= cpu.index() {
            self.consumed.resize(cpu.index() + 1, 0);
        }
        self.consumed[cpu.index()] += 1;
        Some(op)
    }

    fn cursor(&self) -> TraceCursor {
        TraceCursor::Replay(self.consumed.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BenchmarkProfile, TraceGenerator, TraceWriter};

    #[test]
    fn replay_reproduces_the_recorded_stream_per_cpu() {
        let mut gen = TraceGenerator::new(&BenchmarkProfile::synthetic(), 2, 9);
        let mut writer = TraceWriter::new(Vec::new()).unwrap();
        let mut expected: Vec<Vec<TraceOp>> = vec![Vec::new(); 2];
        for i in 0..200u16 {
            let cpu = CpuId(i % 2);
            let op = gen.next_op(cpu);
            writer.record(cpu, op).unwrap();
            expected[cpu.index()].push(op);
        }
        let bytes = writer.finish().unwrap();
        let mut replay = ReplayTrace::from_reader(bytes.as_slice()).unwrap();
        assert_eq!(replay.len(), 200);
        assert_eq!(replay.remaining(CpuId(0)), 100);
        for cpu in [CpuId(0), CpuId(1)] {
            for want in &expected[cpu.index()] {
                assert_eq!(replay.next_for(cpu), Some(*want));
            }
            assert_eq!(replay.next_for(cpu), None, "stream ends");
        }
        assert!(replay.is_empty());
    }

    #[test]
    fn unknown_cpus_have_empty_streams() {
        let mut replay = ReplayTrace::default();
        assert_eq!(replay.next_for(CpuId(5)), None);
        assert_eq!(replay.remaining(CpuId(5)), 0);
        assert!(replay.is_empty());
    }

    #[test]
    fn fast_forward_resumes_where_the_cursor_points() {
        let mut gen = TraceGenerator::new(&BenchmarkProfile::synthetic(), 2, 11);
        let mut writer = TraceWriter::new(Vec::new()).unwrap();
        for i in 0..100u16 {
            let cpu = CpuId(i % 2);
            writer.record(cpu, gen.next_op(cpu)).unwrap();
        }
        let bytes = writer.finish().unwrap();

        let mut live = ReplayTrace::from_reader(bytes.as_slice()).unwrap();
        for i in 0..30u16 {
            let _ = live.next_for(CpuId(i % 2));
        }
        let TraceCursor::Replay(consumed) = TraceSource::cursor(&live) else {
            panic!("replay must report a replay cursor");
        };

        let mut resumed = ReplayTrace::from_reader(bytes.as_slice()).unwrap();
        assert!(resumed.fast_forward(&consumed));
        for cpu in [CpuId(0), CpuId(1)] {
            loop {
                let (a, b) = (live.next_for(cpu), resumed.next_for(cpu));
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }

        // Over-long skips fail instead of wrapping.
        let mut short = ReplayTrace::from_reader(bytes.as_slice()).unwrap();
        assert!(!short.fast_forward(&[1_000, 0]));
        assert!(!short.fast_forward(&[0, 0, 0]), "unknown cpu");
    }
}
